// Package runtime implements the gLLM asynchronous serving runtime (§3.3)
// as a real concurrent system: a driver goroutine that owns scheduling and
// the KV cache, one worker goroutine per pipeline stage, and a decoupled
// frontend (Submit returns immediately; tokens stream back on a channel,
// or — via SubmitBatched — as pooled per-micro-batch event slabs drained
// with Handle.Next, the zero-alloc steady-state path the HTTP frontend
// uses).
//
// The paper's three design principles map directly onto Go concurrency:
//
//  1. Non-blocking pipeline operations — workers receive work over
//     channels and never spin-wait; the driver never blocks on emission.
//  2. Decoupled frontend/backend — Submit is safe from any goroutine and
//     communicates with the driver only through a channel.
//  3. Preemptive (dual-phase) metadata scheduling — in async mode the
//     driver broadcasts a metadata packet to every stage as soon as a
//     micro-batch is scheduled; each worker prepares its inputs from the
//     metadata in a side goroutine, overlapping preparation with the
//     compute of earlier batches. In sync mode (the vLLM-like baseline)
//     metadata travels with the activations and preparation sits on the
//     critical path.
//
// GPU compute is emulated: stage execution occupies the worker for the
// duration given by the same gpu.CostModel the discrete-event engine uses,
// scaled by Config.TimeScale (0 disables sleeping entirely, useful for
// tests and for the fastest-possible serving of synthetic tokens).
//
// # Request lifecycle, shutdown, and backpressure
//
// Every submitted request terminates in exactly one way, and its Events
// channel is always closed afterwards — handles never leak:
//
//   - FinishLength: every requested token was generated (the happy path).
//   - FinishCancelled / FinishTimeout: the submitter's context was
//     cancelled or its deadline expired (SubmitCtx), or Handle.Cancel was
//     called. The driver aborts the request at the next micro-batch
//     boundary and releases its KV blocks.
//   - FinishShutdown: the runtime was drained or closed before the request
//     completed.
//
// Shutdown has two modes. Shutdown(ctx) drains gracefully: new submissions
// are refused with ErrStopped, but queued AND in-flight work keeps being
// scheduled until it completes; when ctx expires the remainder is aborted
// (FinishShutdown) with properly closed channels. Close aborts immediately,
// cutting emulated GPU sleeps short. Both are idempotent and safe to call
// concurrently.
//
// Admission control bounds the work the runtime will buffer: when the
// submit queue is saturated, or the projected KV demand (prompt + output
// tokens summed over every admitted, unfinished request) exceeds
// Config.AdmitKVFactor times the KV capacity, Submit fails fast with
// ErrQueueFull instead of queueing unboundedly.
//
// A watchdog goroutine observes driver progress: when micro-batches are in
// flight but none has retired for Config.WatchdogTimeout (e.g. a stalled
// stage, injectable via Config.StageFault), Stats().Health reports
// "degraded" until progress resumes.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"gllm/internal/engine"
	"gllm/internal/gpu"
	"gllm/internal/metrics"
	"gllm/internal/model"
	"gllm/internal/network"
	"gllm/internal/obs"
	"gllm/internal/request"
	"gllm/internal/sched"
)

// Config describes a runtime deployment.
type Config struct {
	Model model.Config
	GPU   gpu.Spec
	Topo  network.Topology
	// MemUtil is the KV memory fraction (default 0.9).
	MemUtil float64
	// KVBlockSize is tokens per KV block (default 16).
	KVBlockSize int
	Scheduler   sched.Scheduler
	// Async selects the gLLM dual-phase runtime; false gives the coupled
	// (vLLM-like) baseline.
	Async bool
	// EnablePrefixCache turns on cross-request KV reuse for submissions
	// that declare a prefix group.
	EnablePrefixCache bool
	// EnableCPP turns on chunked pipeline parallelism for long prompts.
	EnableCPP bool
	// Prep prices the control-plane CPU work (defaults: engine.VLLMRuntime
	// when coupled, engine.GLLMRuntime when async).
	Prep engine.RuntimeModel
	// TimeScale converts modeled GPU time into wall-clock sleeps
	// (e.g. 0.001 = 1000x faster than modeled). Zero disables sleeping.
	TimeScale float64
	// QueueDepth bounds the submit channel (default 1024). A full queue
	// rejects submissions with ErrQueueFull.
	QueueDepth int
	// AdmitKVTokens, when positive, caps the projected KV demand (prompt +
	// output tokens summed over every admitted, unfinished request); Submit
	// beyond the cap fails with ErrQueueFull. Zero derives the cap from
	// AdmitKVFactor.
	AdmitKVTokens int64
	// AdmitKVFactor expresses the admission cap as a multiple of the
	// deployment's KV capacity (default 8: the queue may hold roughly
	// eight cache-fulls of future work). Negative disables KV-headroom
	// admission control entirely.
	AdmitKVFactor float64
	// WatchdogTimeout flags the runtime degraded when micro-batches are in
	// flight but none has retired for this long (wall clock). Default 30s;
	// negative disables the watchdog.
	WatchdogTimeout time.Duration
	// StageFault, when non-nil, is consulted by every stage worker before
	// computing a micro-batch: a positive duration stalls that stage for
	// that wall-clock time. Fault injection for testing the watchdog,
	// degraded health, and shutdown-under-fault paths. Must be safe for
	// concurrent use; Close cuts injected stalls short.
	StageFault func(stage, seq int) time.Duration
	// Spans, when non-nil, receives per-stage execute/transfer and driver
	// prep spans (wall-clock, relative to runtime start). Its stage count
	// must cover the topology's GPUs. Nil costs nothing per micro-batch.
	Spans *obs.Recorder
	// ReqSpans, when non-nil, receives per-request lifecycle spans
	// (queue/prefill/decode, side "replica") for submissions carrying a
	// distributed trace ID. Nil, or an untraced submission, costs one nil
	// check per terminated request.
	ReqSpans *obs.ReqRecorder
	// Logger, when non-nil, receives structured lifecycle logs
	// (admit/reject/abort/drain/degrade). Nil disables logging.
	Logger *slog.Logger
}

func (c *Config) applyDefaults() {
	if c.MemUtil == 0 {
		c.MemUtil = 0.9
	}
	if c.KVBlockSize == 0 {
		c.KVBlockSize = 16
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 1024
	}
	if c.AdmitKVFactor == 0 {
		c.AdmitKVFactor = 8
	}
	if c.WatchdogTimeout == 0 {
		c.WatchdogTimeout = 30 * time.Second
	}
	if c.Prep.Name == "" {
		if c.Async {
			c.Prep = engine.GLLMRuntime
		} else {
			c.Prep = engine.VLLMRuntime
		}
	}
}

// FinishReason classifies how a request reached its terminal state.
type FinishReason string

// Terminal reasons. Every handle's Events channel closes with exactly one.
const (
	// FinishLength: every requested output token was generated.
	FinishLength FinishReason = "length"
	// FinishCancelled: the submitter cancelled (context or Handle.Cancel).
	FinishCancelled FinishReason = "cancelled"
	// FinishTimeout: the submitter's context deadline expired.
	FinishTimeout FinishReason = "timeout"
	// FinishShutdown: the runtime drained or closed before completion.
	FinishShutdown FinishReason = "shutdown"
	// FinishDisconnected: the transport carrying a remote replica's stream
	// dropped mid-generation (connection reset, remote process death). Only
	// proxy handles (cluster remote transport) terminate with it.
	FinishDisconnected FinishReason = "disconnected"
)

// Health states reported by Snapshot.Health.
const (
	HealthOK       = "ok"       // serving normally
	HealthDegraded = "degraded" // watchdog: in-flight work is not retiring
	HealthDraining = "draining" // Shutdown in progress
	HealthStopped  = "stopped"  // driver exited
)

// TokenEvent is one generated token streamed back to the submitter.
type TokenEvent struct {
	ReqID    int64
	Index    int // 0-based output token index
	Token    uint64
	Text     string
	Finished bool
	// Reason is set on the terminal event only: FinishLength on the last
	// generated token, or an abort reason on a synthetic, empty-Text
	// terminal event for requests that end early.
	Reason FinishReason
}

// Handle tracks one submitted request.
type Handle struct {
	ID int64
	// Events delivers every generated token; it is closed after the final
	// (Finished) event. The channel is buffered for the full output, so
	// slow consumers never stall the driver. Aborted requests receive one
	// final empty-Text event carrying the abort reason before the close.
	//
	// Events is nil for handles obtained via SubmitBatched — those deliver
	// through Handle.Next instead.
	Events <-chan TokenEvent

	rt  *Runtime
	sub *submission
	// cur is the slab most recently returned by Next; recycled on the
	// following Next call.
	cur *eventSlab
}

// Done returns a channel closed when the request reaches a terminal state
// (all tokens emitted, or aborted).
func (h *Handle) Done() <-chan struct{} { return h.sub.done }

// Cancel requests a cooperative abort: the driver removes the request at
// the next micro-batch boundary and releases its KV. Safe to call from any
// goroutine, idempotent, and a no-op once the request is terminal. On a
// proxy handle (no local driver) the abort is delegated to the feeder's
// onCancel hook instead.
func (h *Handle) Cancel() {
	if h.rt == nil {
		h.sub.proxyCancel(FinishCancelled)
		return
	}
	h.rt.requestCancel(h.sub, FinishCancelled)
}

// FinishReason reports how the request terminated. It returns "" until the
// request is terminal (Events closed / Done fired).
func (h *Handle) FinishReason() FinishReason {
	select {
	case <-h.sub.done:
		return h.sub.reason
	default:
		return ""
	}
}

// Next returns the next batch of token events for a handle obtained via
// SubmitBatched. It blocks until the driver delivers events, and returns
// nil when the stream is complete (every event, including the terminal one,
// has been returned by earlier calls) or when ctx is done (check ctx.Err()
// to distinguish). The returned slice is owned by the runtime and valid
// only until the following Next call, which recycles its slab; callers
// must not retain it. Next must not be called concurrently with itself and
// panics on per-token (channel) handles.
func (h *Handle) Next(ctx context.Context) []TokenEvent {
	sub := h.sub
	if !sub.batched {
		panic("runtime: Handle.Next on a per-token (channel) handle; range over Events instead")
	}
	if h.cur != nil {
		h.cur.evs = h.cur.evs[:0]
		slabPool.Put(h.cur)
		h.cur = nil
	}
	var cancelled <-chan struct{}
	if ctx != nil {
		cancelled = ctx.Done()
	}
	for {
		sub.dmu.Lock()
		s := sub.pending
		sub.pending = nil
		closed := sub.dclosed
		sub.dmu.Unlock()
		if s != nil && len(s.evs) > 0 {
			h.cur = s
			return s.evs
		}
		if s != nil {
			slabPool.Put(s) // delivered empty: recycle immediately
		}
		if closed {
			return nil
		}
		select {
		case <-sub.notify:
		case <-cancelled:
			return nil
		}
	}
}

// Snapshot is a point-in-time view of runtime state.
type Snapshot struct {
	Iterations     int
	InFlight       int
	WaitingPrefill int
	RunningDecode  int
	KVFreeRate     float64
	Finished       int
	Preemptions    int
	// Resident counts admitted, unfinished requests (queued or running).
	Resident int
	// Cancelled counts requests aborted before completion (cancellation,
	// timeout, or shutdown).
	Cancelled int
	// Rejected counts submissions refused with ErrQueueFull.
	Rejected int64
	// Health is one of HealthOK, HealthDegraded, HealthDraining,
	// HealthStopped.
	Health string
	// Uptime is the wall-clock time since the runtime started.
	Uptime time.Duration
	// StageBusySeconds is each stage worker's cumulative execute time
	// (emulated compute occupancy; zero when TimeScale is 0).
	StageBusySeconds []float64
	// BubbleRate is the aggregate pipeline bubble rate over the uptime:
	// 1 − Σ_s busy_s / (stages × uptime), the paper's §3 quantity.
	BubbleRate float64
	// KV block accounting (same publish cadence as KVFreeRate). After a
	// drain, KVFreeBlocks+KVCachedBlocks == KVTotalBlocks must hold — the
	// cluster audit's cross-replica KV-leak check.
	KVTotalBlocks  int
	KVFreeBlocks   int
	KVCachedBlocks int
	// PrefixHits / PrefixHitTokens count cross-request KV reuse: attaches
	// served from the prefix cache and the tokens they covered.
	PrefixHits      int
	PrefixHitTokens int64
}

// RetryAfterHint derives a client backoff hint from the snapshot's load:
// a 1 s floor, +1 s per eighth of the KV cache in use beyond half, and
// +1 s per 256 resident requests, capped at 30 s. The HTTP frontend sends
// it as Retry-After on 429s and the cluster router honors it when backing
// off a saturated replica.
func (s Snapshot) RetryAfterHint() time.Duration {
	return retryHint(s.KVFreeRate, s.Resident)
}

// RetryAfterHint is Snapshot.RetryAfterHint on the lightweight view.
func (p Pressure) RetryAfterHint() time.Duration {
	return retryHint(p.KVFree, p.Resident)
}

func retryHint(kvFree float64, resident int) time.Duration {
	secs := 1
	if used := 1 - kvFree; used > 0.5 {
		secs += int((used - 0.5) * 8) // up to +4 s as the cache fills
	}
	secs += resident / 256
	if secs > 30 {
		secs = 30
	}
	return time.Duration(secs) * time.Second
}

// Pressure is the lightweight routing view of a runtime: the load signals
// a cluster router consults per candidate replica per request. Unlike
// Stats it allocates nothing (Snapshot builds per-stage slices).
type Pressure struct {
	// KVFree is the last-published free fraction of the KV cache.
	KVFree float64
	// Resident counts admitted, unfinished requests.
	Resident int
	// QueueLen is the instantaneous submit-queue occupancy.
	QueueLen int
	// Health is one of HealthOK, HealthDegraded, HealthDraining,
	// HealthStopped.
	Health string
}

// Runtime is a live serving deployment.
type Runtime struct {
	cfg         Config
	cost        gpu.CostModel
	stageLayers []int
	kvCapacity  int64
	admitLimit  int64 // 0 = KV-headroom admission disabled

	submitCh chan *submission
	cancelCh chan *submission
	queryCh  chan kvQuery
	doneCh   chan *microBatch
	stopCh   chan struct{}
	killCh   chan struct{}
	stopped  chan struct{}
	stopOnce sync.Once
	killOnce sync.Once

	// subMu serializes submission against the driver's final queue sweep:
	// once stopping is set no new submission can enter submitCh, so the
	// sweep provably terminates every outstanding handle.
	subMu    sync.RWMutex
	stopping bool

	workers []*worker

	collector metrics.Collector

	// Scalar progress counters are atomics written inline by the driver
	// (and read lock-free by Stats and the watchdog); the pool-derived
	// gauges below are published by the driver only when it is about to
	// block or periodically under sustained load — not on every loop
	// iteration, which used to put a mutex write on the hot path.
	iterations atomic.Int64
	inFlight   atomic.Int64
	finished   atomic.Int64
	cancelled  atomic.Int64
	resident   atomic.Int64

	mu     sync.Mutex
	gauges poolGauges

	admittedKV atomic.Int64 // projected KV tokens of admitted, unfinished requests
	rejected   atomic.Int64
	degraded   atomic.Bool
	lastBeat   atomic.Int64 // UnixNano of the driver's last scheduling progress

	nextID atomic.Int64
	start  time.Time
}

// poolGauges are the Snapshot fields derived by walking driver-owned pool
// state; the driver publishes them under rt.mu at block/idle boundaries.
type poolGauges struct {
	waitingPrefill  int
	runningDecode   int
	kvFreeRate      float64
	preemptions     int
	kvTotalBlocks   int
	kvFreeBlocks    int
	kvCachedBlocks  int
	prefixHits      int
	prefixHitTokens int64
}

// kvQuery asks the driver a question about its (driver-owned) KV cache;
// the reply channel must be buffered so the driver never blocks answering.
type kvQuery struct {
	group     int64
	maxTokens int
	reply     chan int
}

// eventSlab is a reusable batch of token events: the driver appends a
// request's new tokens once per retired micro-batch, the consumer swaps the
// slab out wholesale via Handle.Next. Pooled so steady-state delivery
// allocates nothing.
type eventSlab struct{ evs []TokenEvent }

var slabPool = sync.Pool{New: func() any { return &eventSlab{evs: make([]TokenEvent, 0, 64)} }}

type submission struct {
	req      *request.Request
	events   chan TokenEvent // per-token transport; nil when batched
	done     chan struct{}
	kvDemand int64
	// reason is written by the driver before done/events close; readers
	// must wait on either channel first (Handle.FinishReason does).
	reason FinishReason
	// abortReason is the externally requested abort reason (CAS winner
	// sends the submission to cancelCh exactly once).
	abortReason atomic.Pointer[FinishReason]
	// onCancel, set only on proxy handles (NewProxyHandle), receives the
	// abort reason in place of the driver's cancelCh path.
	onCancel func(FinishReason)

	// Batched (slab) delivery, used instead of the events channel when
	// batched is set: the driver appends to pending under dmu — a short
	// critical section, so it never blocks on a slow consumer — and pokes
	// notify (capacity 1, non-blocking) once per delivery.
	batched bool
	dmu     sync.Mutex
	pending *eventSlab
	dclosed bool
	notify  chan struct{}
}

// notifyDelivery wakes a Handle.Next waiter; never blocks (capacity-1
// channel: a pending token already guarantees a wakeup).
func (sub *submission) notifyDelivery() {
	select {
	case sub.notify <- struct{}{}:
	default:
	}
}

// microBatch is the unit passed through the pipeline. Retired batches are
// recycled through mbPool by the driver.
type microBatch struct {
	seq   int
	batch *sched.Batch
	shape gpu.BatchShape
}

var mbPool = sync.Pool{New: func() any { return new(microBatch) }}

// ErrStopped is returned by Submit after Shutdown or Close.
var ErrStopped = errors.New("runtime: stopped")

// ErrQueueFull is returned by Submit when admission control refuses the
// request: the submit queue is saturated or the projected KV demand of
// admitted work exceeds the configured headroom. Callers should shed load
// or retry later (the HTTP frontend maps it to 429 + Retry-After).
var ErrQueueFull = errors.New("runtime: queue full")

// Start validates the configuration, spawns the driver and stage workers,
// and returns a serving runtime.
func Start(cfg Config) (*Runtime, error) {
	cfg.applyDefaults()
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.GPU.Validate(); err != nil {
		return nil, err
	}
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("runtime: nil scheduler")
	}
	depth := cfg.Topo.GPUs()
	if depth < 1 || depth > cfg.Model.NumLayers {
		return nil, fmt.Errorf("runtime: invalid pipeline depth %d", depth)
	}
	cost := gpu.NewCostModel(cfg.Model, cfg.GPU)
	stageLayers := cfg.Model.StageLayers(depth)
	kvCap := cost.KVCapacityTokensPP(stageLayers, cfg.MemUtil)
	if kvCap < int64(cfg.KVBlockSize) {
		return nil, fmt.Errorf("runtime: %s does not fit on %d x %s", cfg.Model.Name, depth, cfg.GPU.Name)
	}

	rt := &Runtime{
		cfg:         cfg,
		cost:        cost,
		stageLayers: stageLayers,
		kvCapacity:  kvCap,
		submitCh:    make(chan *submission, cfg.QueueDepth),
		cancelCh:    make(chan *submission, cfg.QueueDepth),
		queryCh:     make(chan kvQuery),
		doneCh:      make(chan *microBatch, depth+1),
		stopCh:      make(chan struct{}),
		killCh:      make(chan struct{}),
		stopped:     make(chan struct{}),
		start:       time.Now(),
	}
	switch {
	case cfg.AdmitKVTokens > 0:
		rt.admitLimit = cfg.AdmitKVTokens
	case cfg.AdmitKVFactor > 0:
		rt.admitLimit = int64(cfg.AdmitKVFactor * float64(kvCap))
	}
	rt.lastBeat.Store(time.Now().UnixNano())
	rt.gauges = poolGauges{kvFreeRate: 1} // empty cache until the driver's first pass
	rt.workers = make([]*worker, depth)
	for i := range rt.workers {
		rt.workers[i] = newWorker(rt, i)
	}
	// Wire activation channels stage i -> i+1; the last feeds doneCh.
	for i, w := range rt.workers {
		w.start(i+1 < depth)
	}
	go rt.driverLoop()
	if cfg.WatchdogTimeout > 0 {
		go rt.watchdogLoop()
	}
	return rt, nil
}

// KVCapacityTokens returns the derived KV capacity of the deployment.
func (rt *Runtime) KVCapacityTokens() int64 { return rt.kvCapacity }

// Submit enqueues a request with the given prompt and output lengths and
// returns a handle streaming its tokens. It is safe for concurrent use.
func (rt *Runtime) Submit(promptLen, maxTokens int) (*Handle, error) {
	return rt.submit(context.Background(), promptLen, maxTokens, 0, 0)
}

// SubmitCtx is Submit bound to a context: when ctx is cancelled or its
// deadline expires, the request is aborted at the next micro-batch
// boundary, its KV blocks are released, and its handle terminates with
// FinishCancelled or FinishTimeout.
func (rt *Runtime) SubmitCtx(ctx context.Context, promptLen, maxTokens int) (*Handle, error) {
	return rt.submit(ctx, promptLen, maxTokens, 0, 0)
}

// SubmitWithPrefix is Submit for a request whose first sharedLen prompt
// tokens are shared content of the given prefix group (requires
// Config.EnablePrefixCache for reuse to occur).
func (rt *Runtime) SubmitWithPrefix(promptLen, maxTokens int, group int64, sharedLen int) (*Handle, error) {
	return rt.submit(context.Background(), promptLen, maxTokens, group, sharedLen)
}

// SubmitCtxWithPrefix combines SubmitCtx and SubmitWithPrefix.
func (rt *Runtime) SubmitCtxWithPrefix(ctx context.Context, promptLen, maxTokens int, group int64, sharedLen int) (*Handle, error) {
	return rt.submit(ctx, promptLen, maxTokens, group, sharedLen)
}

// SubmitBatched is SubmitCtx with slab-based token delivery: the driver
// appends each retired micro-batch's tokens to a pooled event slab and the
// consumer drains whole slabs via Handle.Next — the allocation-free
// steady-state path the HTTP frontend streams from. The returned handle's
// Events channel is nil; lifecycle semantics (Done, Cancel, FinishReason,
// terminal abort events) are identical to Submit.
func (rt *Runtime) SubmitBatched(ctx context.Context, promptLen, maxTokens int) (*Handle, error) {
	return rt.submitMode(ctx, SubmitSpec{PromptLen: promptLen, MaxTokens: maxTokens}, true)
}

// SubmitBatchedPrefix is SubmitBatched for a request whose first sharedLen
// prompt tokens are shared content of the given prefix group — the path the
// HTTP frontend and the cluster router submit conversation follow-ups
// through (group 0 behaves exactly like SubmitBatched).
func (rt *Runtime) SubmitBatchedPrefix(ctx context.Context, promptLen, maxTokens int, group int64, sharedLen int) (*Handle, error) {
	return rt.SubmitBatchedSpec(ctx, SubmitSpec{
		PromptLen: promptLen, MaxTokens: maxTokens,
		PrefixGroup: group, SharedPrefixLen: sharedLen,
	})
}

// SubmitSpec fully describes one submission — the extensible submit
// surface. The positional Submit* helpers build specs; new per-request
// context (like the distributed trace ID) rides here without another
// signature permutation.
type SubmitSpec struct {
	PromptLen int
	MaxTokens int
	// PrefixGroup/SharedPrefixLen declare a shared conversation prefix
	// (see SubmitWithPrefix).
	PrefixGroup     int64
	SharedPrefixLen int
	// Trace is the distributed request-trace context (zero = untraced).
	// The driver records queue/prefill/decode lifecycle spans for traced
	// requests into Config.ReqSpans at termination.
	Trace obs.TraceID
}

// SubmitBatchedSpec is the spec-based batched submit — what the HTTP
// frontend and the cluster router call.
func (rt *Runtime) SubmitBatchedSpec(ctx context.Context, spec SubmitSpec) (*Handle, error) {
	return rt.submitMode(ctx, spec, true)
}

// MatchPrefix reports how many leading tokens of a prompt in the given
// prefix group are resident in this runtime's KV cache (whole blocks,
// capped at maxTokens). The driver answers the query between scheduling
// events, so the result is exact at the moment of the answer; a stopped
// runtime reports 0. Safe for concurrent use — this is how a cluster
// router decides whether a replica still holds a conversation's context.
func (rt *Runtime) MatchPrefix(group int64, maxTokens int) int {
	if group == 0 || maxTokens <= 0 {
		return 0
	}
	q := kvQuery{group: group, maxTokens: maxTokens, reply: make(chan int, 1)}
	select {
	case rt.queryCh <- q:
		return <-q.reply
	case <-rt.stopped:
		return 0
	}
}

func (rt *Runtime) submit(ctx context.Context, promptLen, maxTokens int, group int64, sharedLen int) (*Handle, error) {
	return rt.submitMode(ctx, SubmitSpec{
		PromptLen: promptLen, MaxTokens: maxTokens,
		PrefixGroup: group, SharedPrefixLen: sharedLen,
	}, false)
}

func (rt *Runtime) submitMode(ctx context.Context, spec SubmitSpec, batched bool) (*Handle, error) {
	promptLen, maxTokens := spec.PromptLen, spec.MaxTokens
	if promptLen <= 0 || maxTokens <= 0 {
		return nil, fmt.Errorf("runtime: invalid lengths %d/%d", promptLen, maxTokens)
	}
	if spec.SharedPrefixLen < 0 || spec.SharedPrefixLen > promptLen {
		return nil, fmt.Errorf("runtime: shared prefix %d out of prompt %d", spec.SharedPrefixLen, promptLen)
	}
	if int64(promptLen+maxTokens) > rt.kvCapacity {
		return nil, fmt.Errorf("runtime: request needs %d KV tokens, capacity %d", promptLen+maxTokens, rt.kvCapacity)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// The read lock pins the driver's stopping flag for the duration of the
	// enqueue: after the driver sets it (write lock) and sweeps the queue,
	// no submission can slip in behind the sweep and leak its handle.
	rt.subMu.RLock()
	defer rt.subMu.RUnlock()
	if rt.stopping || rt.isDraining() {
		return nil, ErrStopped
	}

	demand := int64(promptLen + maxTokens)
	if rt.admitLimit > 0 {
		if rt.admittedKV.Add(demand) > rt.admitLimit {
			rt.admittedKV.Add(-demand)
			rt.rejected.Add(1)
			rt.logEvent(slog.LevelWarn, "submission rejected",
				"reason", "kv_admission", "prompt", promptLen, "max_tokens", maxTokens,
				"limit_tokens", rt.admitLimit)
			return nil, fmt.Errorf("%w: projected KV demand exceeds %d-token admission limit",
				ErrQueueFull, rt.admitLimit)
		}
	} else {
		rt.admittedKV.Add(demand)
	}

	id := rt.nextID.Add(1) - 1

	req := request.New(id, time.Since(rt.start), promptLen, maxTokens)
	req.PrefixGroup = spec.PrefixGroup
	req.SharedPrefixLen = spec.SharedPrefixLen
	req.Trace = spec.Trace
	sub := &submission{
		req:      req,
		done:     make(chan struct{}),
		kvDemand: demand,
		batched:  batched,
	}
	if batched {
		sub.notify = make(chan struct{}, 1)
	} else {
		sub.events = make(chan TokenEvent, maxTokens)
	}
	select {
	case rt.submitCh <- sub:
	default:
		rt.admittedKV.Add(-demand)
		rt.rejected.Add(1)
		rt.logEvent(slog.LevelWarn, "submission rejected",
			"reason", "queue_full", "id", id, "depth", cap(rt.submitCh))
		return nil, fmt.Errorf("%w: submit queue saturated (depth %d)", ErrQueueFull, cap(rt.submitCh))
	}
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				reason := FinishCancelled
				if errors.Is(ctx.Err(), context.DeadlineExceeded) {
					reason = FinishTimeout
				}
				rt.requestCancel(sub, reason)
			case <-sub.done:
			}
		}()
	}
	return &Handle{ID: id, Events: sub.events, rt: rt, sub: sub}, nil
}

// proxyCancel records the abort reason (first writer wins) and invokes the
// proxy handle's onCancel hook exactly once. Safe from any goroutine.
func (sub *submission) proxyCancel(reason FinishReason) {
	if !sub.abortReason.CompareAndSwap(nil, &reason) {
		return
	}
	if sub.onCancel != nil {
		sub.onCancel(reason)
	}
}

// requestCancel records the abort reason (first writer wins) and notifies
// the driver exactly once. Safe from any goroutine; no-op once terminal.
func (rt *Runtime) requestCancel(sub *submission, reason FinishReason) {
	if !sub.abortReason.CompareAndSwap(nil, &reason) {
		return
	}
	select {
	case rt.cancelCh <- sub:
	case <-sub.done:
	case <-rt.stopped:
	}
}

// Stats returns a snapshot of runtime counters and health. Counters are
// read from the driver's atomics (always current); the pool-derived gauges
// (WaitingPrefill, RunningDecode, KVFreeRate, Preemptions) reflect the
// driver's most recent publish — exact whenever the pipeline is idle or the
// driver is blocked waiting for work, and at most a few micro-batches stale
// under sustained load.
func (rt *Runtime) Stats() Snapshot {
	rt.mu.Lock()
	g := rt.gauges
	rt.mu.Unlock()
	s := Snapshot{
		Iterations:      int(rt.iterations.Load()),
		InFlight:        int(rt.inFlight.Load()),
		WaitingPrefill:  g.waitingPrefill,
		RunningDecode:   g.runningDecode,
		KVFreeRate:      g.kvFreeRate,
		Finished:        int(rt.finished.Load()),
		Preemptions:     g.preemptions,
		Resident:        int(rt.resident.Load()),
		Cancelled:       int(rt.cancelled.Load()),
		KVTotalBlocks:   g.kvTotalBlocks,
		KVFreeBlocks:    g.kvFreeBlocks,
		KVCachedBlocks:  g.kvCachedBlocks,
		PrefixHits:      g.prefixHits,
		PrefixHitTokens: g.prefixHitTokens,
	}
	s.Rejected = rt.rejected.Load()
	s.Uptime = time.Since(rt.start)
	s.StageBusySeconds = make([]float64, len(rt.workers))
	var busy float64
	for i, w := range rt.workers {
		s.StageBusySeconds[i] = time.Duration(w.busyNanos.Load()).Seconds()
		busy += s.StageBusySeconds[i]
	}
	if s.Uptime > 0 {
		s.BubbleRate = 1 - busy/(s.Uptime.Seconds()*float64(len(rt.workers)))
	}
	s.Health = rt.health()
	return s
}

// health classifies the runtime's current serving state.
func (rt *Runtime) health() string {
	switch {
	case rt.isStopped():
		return HealthStopped
	case rt.isDraining():
		return HealthDraining
	case rt.degraded.Load():
		return HealthDegraded
	default:
		return HealthOK
	}
}

// Pressure returns the lightweight routing view: KV headroom, residency,
// queue occupancy, and health, without Snapshot's per-stage allocations.
// Gauge staleness matches Stats (exact when the driver idles, at most a
// few micro-batches behind under sustained load).
func (rt *Runtime) Pressure() Pressure {
	rt.mu.Lock()
	free := rt.gauges.kvFreeRate
	rt.mu.Unlock()
	return Pressure{
		KVFree:   free,
		Resident: int(rt.resident.Load()),
		QueueLen: len(rt.submitCh),
		Health:   rt.health(),
	}
}

func (rt *Runtime) isStopped() bool {
	select {
	case <-rt.stopped:
		return true
	default:
		return false
	}
}

func (rt *Runtime) isDraining() bool {
	select {
	case <-rt.stopCh:
		return true
	default:
		return false
	}
}

// Report summarizes all finished requests so far.
func (rt *Runtime) Report() metrics.Report {
	return rt.collector.Report(time.Since(rt.start))
}

// Metrics exposes the runtime's collector (safe for concurrent use; the
// server builds its /metrics page from Records snapshots).
func (rt *Runtime) Metrics() *metrics.Collector { return &rt.collector }

// Start returns the runtime's wall-clock start time (span timestamps in
// Config.Spans are relative to it).
func (rt *Runtime) Start() time.Time { return rt.start }

// logEvent emits a structured lifecycle log when a Logger is configured.
func (rt *Runtime) logEvent(level slog.Level, msg string, args ...any) {
	if rt.cfg.Logger != nil {
		rt.cfg.Logger.Log(context.Background(), level, msg, args...)
	}
}

// Shutdown drains the runtime gracefully: new submissions are refused, but
// queued and in-flight work keeps being scheduled until it completes. When
// ctx expires first, the remainder is aborted (handles terminate with
// FinishShutdown and closed channels) and ctx.Err() is returned. It is
// idempotent and safe for concurrent use.
func (rt *Runtime) Shutdown(ctx context.Context) error {
	rt.stopOnce.Do(func() { close(rt.stopCh) })
	select {
	case <-rt.stopped:
		return nil
	case <-ctx.Done():
		rt.killOnce.Do(func() { close(rt.killCh) })
		<-rt.stopped
		return ctx.Err()
	}
}

// Close stops the runtime immediately: in-flight micro-batches retire with
// their emulated sleeps cut short, and every outstanding request is aborted
// with FinishShutdown. Idempotent and safe for concurrent use.
func (rt *Runtime) Close() error {
	rt.stopOnce.Do(func() { close(rt.stopCh) })
	rt.killOnce.Do(func() { close(rt.killCh) })
	<-rt.stopped
	return nil
}

// watchdogLoop flags the runtime degraded when batches are in flight but
// none has retired for WatchdogTimeout — a stalled stage (or an injected
// fault) rather than an idle pipeline.
func (rt *Runtime) watchdogLoop() {
	timeout := rt.cfg.WatchdogTimeout
	tick := timeout / 8
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-rt.stopped:
			return
		case <-t.C:
			inFlight := int(rt.inFlight.Load())
			beat := time.Unix(0, rt.lastBeat.Load())
			cur := inFlight > 0 && time.Since(beat) > timeout
			if prev := rt.degraded.Swap(cur); prev != cur {
				if cur {
					rt.logEvent(slog.LevelWarn, "health degraded",
						"in_flight", inFlight, "stalled_for", time.Since(beat))
				} else {
					rt.logEvent(slog.LevelInfo, "health recovered")
				}
			}
		}
	}
}

// beat records driver scheduling progress for the watchdog.
func (rt *Runtime) beat() { rt.lastBeat.Store(time.Now().UnixNano()) }

// sleepScaled emulates occupancy of modeled duration d.
func (rt *Runtime) sleepScaled(d time.Duration) {
	if rt.cfg.TimeScale <= 0 || d <= 0 {
		return
	}
	rt.sleepWall(time.Duration(float64(d) * rt.cfg.TimeScale))
}

// sleepWall sleeps for wall-clock duration d, cut short by Close.
func (rt *Runtime) sleepWall(d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-rt.killCh:
	}
}
