package runtime

import "strings"

// TokenValue deterministically derives the token sampled at output index
// idx of request reqID (greedy sampling of the emulated model). Because the
// value depends only on (request, index), generated content is invariant
// under scheduling policy — the property the paper's Table 1 checks with
// MMLU-Pro and that the Table 1 experiment here verifies directly.
func TokenValue(reqID int64, idx int) uint64 {
	x := uint64(reqID)*0x9E3779B97F4A7C15 + uint64(idx) + 0x632BE59BD9B4E019
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// vocab is the emulated detokenizer vocabulary.
var vocab = []string{
	"the", "of", "and", "to", "in", "is", "that", "it", "for", "as",
	"with", "was", "on", "are", "by", "this", "be", "from", "or", "an",
	"which", "one", "would", "all", "will", "there", "can", "more", "if", "has",
	"two", "may", "time", "system", "model", "token", "cache", "batch", "stage", "pipe",
	"serve", "load", "rate", "queue", "first", "next", "data", "run", "plan", "flow",
	"node", "link", "wave", "step", "core", "unit", "line", "word", "page", "block",
	"depth", "scale", "merge", "split",
}

// vocabSpaced holds every vocab word with its trailing space precomputed,
// so rendering a token is a table lookup instead of a per-token string
// concatenation (TokenText runs once per generated token on the live path).
var vocabSpaced = func() []string {
	out := make([]string, len(vocab))
	for i, w := range vocab {
		out[i] = w + " "
	}
	return out
}()

// TokenText renders a token value as detokenized text (word plus trailing
// space). Allocation-free: the rendered strings are precomputed.
func TokenText(tok uint64) string {
	return vocabSpaced[tok%uint64(len(vocabSpaced))]
}

// TokenizeLen counts the tokens of a prompt string under the emulated
// tokenizer (whitespace words; empty prompts count as one token).
func TokenizeLen(prompt string) int {
	n := len(strings.Fields(prompt))
	if n == 0 {
		return 1
	}
	return n
}

// Detokenize renders the first n output tokens of a request as text.
func Detokenize(reqID int64, n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteString(TokenText(TokenValue(reqID, i)))
	}
	return strings.TrimSpace(sb.String())
}
