//go:build race

package runtime

// raceEnabled lets allocation guards skip under the race detector, whose
// instrumentation allocates on paths that are clean in normal builds.
const raceEnabled = true
