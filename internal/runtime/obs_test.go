package runtime

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"
	"time"

	"gllm/internal/gpu"
	"gllm/internal/model"
	"gllm/internal/network"
	"gllm/internal/obs"
	"gllm/internal/sched"
)

func obsRuntime(t *testing.T, rec *obs.Recorder, logBuf *bytes.Buffer) *Runtime {
	t.Helper()
	cfg := Config{
		Model:     model.Qwen25_14B,
		GPU:       gpu.L20,
		Topo:      network.IntraNode(4, network.PCIe),
		Scheduler: sched.NewDefaultThrottle(),
		Async:     true,
		TimeScale: 0,
		Spans:     rec,
	}
	if logBuf != nil {
		cfg.Logger = slog.New(slog.NewTextHandler(logBuf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	}
	rt, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestRuntimeRecordsSpans(t *testing.T) {
	rec := obs.NewRecorder(4, 0)
	rt := obsRuntime(t, rec, nil)
	h, err := rt.Submit(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	collect(t, h)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	byKindStage := map[obs.Kind]map[int16]int{}
	for _, s := range rec.Spans() {
		m := byKindStage[s.Kind]
		if m == nil {
			m = map[int16]int{}
			byKindStage[s.Kind] = m
		}
		m[s.Stage]++
	}
	// Every stage executed every micro-batch, transfers on the first three
	// links, prep once per injection.
	for stage := int16(0); stage < 4; stage++ {
		if byKindStage[obs.KindExec][stage] == 0 {
			t.Fatalf("no exec spans on stage %d: %v", stage, byKindStage)
		}
	}
	for stage := int16(0); stage < 3; stage++ {
		if byKindStage[obs.KindXfer][stage] == 0 {
			t.Fatalf("no xfer spans on link %d: %v", stage, byKindStage)
		}
	}
	if byKindStage[obs.KindPrep][obs.PrepStage] == 0 {
		t.Fatal("no prep spans")
	}
	exec := byKindStage[obs.KindExec]
	if exec[0] != exec[1] || exec[0] != exec[3] {
		t.Fatalf("stages saw different micro-batch counts: %v", exec)
	}

	// The exported trace must decode cleanly.
	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := obs.ReadChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Stages != 4 {
		t.Fatalf("decoded stages = %d", dec.Stages)
	}
}

func TestSnapshotBubbleAccounting(t *testing.T) {
	rt := testRuntime(t, true)
	h, err := rt.Submit(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	collect(t, h)
	s := rt.Stats()
	if len(s.StageBusySeconds) != 4 {
		t.Fatalf("StageBusySeconds = %v", s.StageBusySeconds)
	}
	if s.Uptime <= 0 {
		t.Fatalf("uptime = %v", s.Uptime)
	}
	// TimeScale 0 ⇒ no emulated occupancy ⇒ bubble rate ≈ 1.
	if s.BubbleRate < 0.9 || s.BubbleRate > 1 {
		t.Fatalf("bubble rate = %v", s.BubbleRate)
	}
}

func TestLifecycleLogging(t *testing.T) {
	var logBuf bytes.Buffer
	rt := obsRuntime(t, nil, &logBuf)
	h, err := rt.Submit(32, 4096)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first token so the cancel provably lands after admission.
	select {
	case <-h.Events:
	case <-time.After(5 * time.Second):
		t.Fatal("no first token")
	}
	h.Cancel()
	<-h.Done()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	out := logBuf.String()
	for _, want := range []string{"request admitted", "request aborted", "reason=cancelled", "drain started", "runtime stopped"} {
		if !strings.Contains(out, want) {
			t.Fatalf("log missing %q:\n%s", want, out)
		}
	}
}

func TestAbortedRequestsExcludedFromLatencyStats(t *testing.T) {
	rt := testRuntime(t, true)
	done, err := rt.Submit(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	collect(t, done)
	victim, err := rt.Submit(16, 4096)
	if err != nil {
		t.Fatal(err)
	}
	victim.Cancel()
	<-victim.Done()

	rep := rt.Report()
	if rep.Requests != 1 || rep.Aborted != 1 {
		t.Fatalf("report = requests %d aborted %d", rep.Requests, rep.Aborted)
	}
	by := rt.Metrics().ByReason()
	if by["cancelled"] != 1 || by["length"] != 1 {
		t.Fatalf("ByReason = %v", by)
	}
}
