package runtime

import "sync"

// ProxyFeeder feeds a Handle that is not backed by a local driver. The
// cluster's remote-replica transport adapts one SSE response stream into a
// Handle this way: tokens parsed off the wire are Delivered into the same
// pooled-slab path the local driver uses, so consumers (the HTTP frontend,
// the router's audit) cannot tell a remote stream from a local one.
//
// Deliver and Close are safe to call from one feeding goroutine
// concurrently with the consumer's Handle.Next/Cancel; Deliver must not be
// called concurrently with itself.
type ProxyFeeder struct {
	sub       *submission
	closeOnce sync.Once
}

// NewProxyHandle returns a batched-delivery Handle whose events are
// supplied by the returned feeder instead of a local driver. onCancel,
// when non-nil, is invoked at most once — from the first Handle.Cancel
// call — with the abort reason; the feeder side is then expected to
// terminate the stream and Close the handle.
func NewProxyHandle(id int64, onCancel func(FinishReason)) (*Handle, *ProxyFeeder) {
	sub := &submission{
		done:     make(chan struct{}),
		batched:  true,
		notify:   make(chan struct{}, 1),
		onCancel: onCancel,
	}
	return &Handle{ID: id, sub: sub}, &ProxyFeeder{sub: sub}
}

// Deliver appends events for the consumer's next Handle.Next call. It
// never blocks on the consumer (slabs grow as needed, exactly like the
// driver's emit path) and is a no-op after Close.
func (f *ProxyFeeder) Deliver(evs ...TokenEvent) {
	if len(evs) == 0 {
		return
	}
	sub := f.sub
	sub.dmu.Lock()
	if sub.dclosed {
		sub.dmu.Unlock()
		return
	}
	s := sub.pending
	if s == nil {
		s = slabPool.Get().(*eventSlab)
		sub.pending = s
	}
	s.evs = append(s.evs, evs...)
	sub.dmu.Unlock()
	sub.notifyDelivery()
}

// Close terminates the stream with the given reason: pending events remain
// drainable, then Handle.Next returns nil and Handle.FinishReason reports
// the reason (Done is closed first, matching the driver's finishSub
// ordering). Idempotent — the first reason wins.
func (f *ProxyFeeder) Close(reason FinishReason) {
	f.closeOnce.Do(func() {
		sub := f.sub
		sub.reason = reason
		close(sub.done)
		sub.dmu.Lock()
		sub.dclosed = true
		sub.dmu.Unlock()
		sub.notifyDelivery()
	})
}

// Abort terminates a stream early exactly like the driver does: one
// synthetic, empty-Text terminal event carrying the reason (at the given
// output index), then Close.
func (f *ProxyFeeder) Abort(reqID int64, index int, reason FinishReason) {
	f.Deliver(TokenEvent{ReqID: reqID, Index: index, Finished: true, Reason: reason})
	f.Close(reason)
}

// Closed reports whether Close has run (the stream reached a terminal
// state on the feeding side).
func (f *ProxyFeeder) Closed() bool {
	f.sub.dmu.Lock()
	defer f.sub.dmu.Unlock()
	return f.sub.dclosed
}
