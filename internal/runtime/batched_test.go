package runtime

import (
	"context"
	"fmt"
	goruntime "runtime"
	"runtime/debug"
	"strings"
	"sync"
	"testing"
	"time"

	"gllm/internal/core"
	"gllm/internal/gpu"
	"gllm/internal/model"
	"gllm/internal/network"
	"gllm/internal/sched"
)

// collectBatched drains a SubmitBatched handle through Next, copying each
// slab (the slices are recycled by the following Next call).
func collectBatched(t *testing.T, h *Handle) []TokenEvent {
	t.Helper()
	var events []TokenEvent
	deadline, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for {
		evs := h.Next(deadline)
		if evs == nil {
			if deadline.Err() != nil {
				t.Fatalf("timed out after %d events", len(events))
			}
			return events
		}
		events = append(events, evs...)
	}
}

func TestBatchedStreamsAllTokens(t *testing.T) {
	rt := testRuntime(t, true)
	h, err := rt.SubmitBatched(context.Background(), 100, 20)
	if err != nil {
		t.Fatal(err)
	}
	if h.Events != nil {
		t.Fatal("batched handle exposes an events channel")
	}
	events := collectBatched(t, h)
	if len(events) != 20 {
		t.Fatalf("events = %d, want 20", len(events))
	}
	for i, ev := range events {
		if ev.Index != i {
			t.Fatalf("event %d has index %d", i, ev.Index)
		}
		if ev.ReqID != h.ID {
			t.Fatalf("event req = %d, want %d", ev.ReqID, h.ID)
		}
		if ev.Text == "" {
			t.Fatal("empty token text")
		}
		if ev.Finished != (i == 19) {
			t.Fatalf("finished flag wrong at %d", i)
		}
	}
	if r := events[19].Reason; r != FinishLength {
		t.Fatalf("terminal reason = %q", r)
	}
	select {
	case <-h.Done():
	default:
		t.Fatal("done not closed after terminal event")
	}
	if r := h.FinishReason(); r != FinishLength {
		t.Fatalf("FinishReason = %q", r)
	}
	// The stream is terminal: further Next calls return nil immediately.
	if evs := h.Next(context.Background()); evs != nil {
		t.Fatalf("Next after terminal returned %d events", len(evs))
	}
}

// renderStream canonicalizes one request's token stream for byte-exact
// comparison across delivery modes.
func renderStream(events []TokenEvent) string {
	var sb strings.Builder
	for _, ev := range events {
		fmt.Fprintf(&sb, "%d/%d/%d/%s/%v/%s\n",
			ev.ReqID, ev.Index, ev.Token, ev.Text, ev.Finished, ev.Reason)
	}
	return sb.String()
}

// Batched delivery is a transport change only: under every scheduler policy
// the per-request event streams must be byte-identical to the per-token
// channel baseline, and every handle must terminate exactly once.
func TestBatchedMatchesPerTokenAcrossSchedulers(t *testing.T) {
	names := []string{
		"sarathi", "gllm-ck", "vllm-ve", "td-pipe", "orca",
		"batch-level", "gllm", "gllm-no-wt", "gllm-no-ut",
	}
	// A small mixed workload: enough requests to force multi-request
	// batches, small enough that the full cross stays fast.
	type spec struct{ prompt, out int }
	workload := []spec{
		{64, 8}, {200, 5}, {33, 16}, {500, 3}, {128, 12}, {80, 7},
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			streams := make(map[bool][]string) // batched? -> rendered streams
			for _, batched := range []bool{false, true} {
				s, err := sched.ByName(name, 2048, core.DefaultParams())
				if err != nil {
					t.Fatal(err)
				}
				rt, err := Start(Config{
					Model:     model.Qwen25_14B,
					GPU:       gpu.L20,
					Topo:      network.IntraNode(4, network.PCIe),
					Scheduler: s,
					Async:     true,
					TimeScale: 0,
				})
				if err != nil {
					t.Fatal(err)
				}
				handles := make([]*Handle, len(workload))
				for i, wsp := range workload {
					var h *Handle
					if batched {
						h, err = rt.SubmitBatched(context.Background(), wsp.prompt, wsp.out)
					} else {
						h, err = rt.Submit(wsp.prompt, wsp.out)
					}
					if err != nil {
						t.Fatal(err)
					}
					handles[i] = h
				}
				rendered := make([]string, len(handles))
				for i, h := range handles {
					var events []TokenEvent
					if batched {
						events = collectBatched(t, h)
					} else {
						events = collect(t, h)
					}
					terminal := 0
					for _, ev := range events {
						if ev.Finished {
							terminal++
						}
					}
					if terminal != 1 {
						t.Fatalf("%s batched=%v request %d: %d terminal events",
							name, batched, i, terminal)
					}
					rendered[i] = renderStream(events)
				}
				streams[batched] = rendered
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				if err := rt.Shutdown(ctx); err != nil {
					t.Fatal(err)
				}
				cancel()
			}
			for i := range workload {
				if streams[true][i] != streams[false][i] {
					t.Fatalf("request %d streams differ\nbatched:\n%s\nper-token:\n%s",
						i, streams[true][i], streams[false][i])
				}
			}
		})
	}
}

// pacedRuntime builds a runtime whose stage 0 stalls 2ms per micro-batch so
// cancellation reliably lands mid-generation.
func pacedRuntime(t *testing.T) *Runtime {
	t.Helper()
	rt, err := Start(Config{
		Model:     model.Qwen25_14B,
		GPU:       gpu.L20,
		Topo:      network.IntraNode(4, network.PCIe),
		Scheduler: sched.NewDefaultThrottle(),
		Async:     true,
		TimeScale: 0,
		StageFault: func(stage, seq int) time.Duration {
			if stage == 0 {
				return 2 * time.Millisecond
			}
			return 0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	return rt
}

// Cancelling a batched request mid-stream delivers exactly one terminal
// abort event and Next then reports a drained stream.
func TestBatchedCancelMidBatch(t *testing.T) {
	rt := pacedRuntime(t)
	h, err := rt.SubmitBatched(context.Background(), 64, 100000)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first delivered slab, then cancel mid-generation.
	first := h.Next(context.Background())
	if first == nil {
		t.Fatal("stream ended before any tokens")
	}
	h.Cancel()
	var tail []TokenEvent
	deadline, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for {
		evs := h.Next(deadline)
		if evs == nil {
			if deadline.Err() != nil {
				t.Fatal("cancelled stream never terminated")
			}
			break
		}
		tail = append(tail, evs...)
	}
	if len(tail) == 0 {
		t.Fatal("no terminal event after cancel")
	}
	last := tail[len(tail)-1]
	if !last.Finished || last.Reason != FinishCancelled || last.Text != "" {
		t.Fatalf("terminal event = %+v", last)
	}
	terminal := 0
	for _, ev := range tail {
		if ev.Finished {
			terminal++
		}
	}
	if terminal != 1 {
		t.Fatalf("%d terminal events in tail", terminal)
	}
	if r := h.FinishReason(); r != FinishCancelled {
		t.Fatalf("FinishReason = %q", r)
	}
}

// A context cancellation aborts a batched request just like Handle.Cancel,
// and Next with the cancelled context returns promptly (the terminal abort
// event is still observable with a fresh context).
func TestBatchedContextCancel(t *testing.T) {
	rt := pacedRuntime(t)
	ctx, cancel := context.WithCancel(context.Background())
	h, err := rt.SubmitBatched(ctx, 64, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if evs := h.Next(ctx); evs == nil {
		t.Fatal("stream ended before any tokens")
	}
	cancel()
	// Next with the dead context must not block.
	if evs := h.Next(ctx); evs != nil && ctx.Err() == nil {
		t.Fatal("Next ignored context cancellation")
	}
	// The stream itself still terminates with the abort event.
	sawTerminal := false
	deadline, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	for {
		evs := h.Next(deadline)
		if evs == nil {
			if deadline.Err() != nil {
				t.Fatal("stream never terminated after context cancel")
			}
			break
		}
		for _, ev := range evs {
			if ev.Finished {
				sawTerminal = true
				if ev.Reason != FinishCancelled {
					t.Fatalf("terminal reason = %q", ev.Reason)
				}
			}
		}
	}
	if !sawTerminal {
		t.Fatal("no terminal event observed")
	}
	<-h.Done()
}

// Graceful drain completes queued batched work (streams end with "length"),
// mirroring the per-token drain guarantee.
func TestBatchedShutdownDrains(t *testing.T) {
	rt, err := Start(Config{
		Model:     model.Qwen25_14B,
		GPU:       gpu.L20,
		Topo:      network.IntraNode(4, network.PCIe),
		Scheduler: sched.NewDefaultThrottle(),
		Async:     true,
		TimeScale: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	handles := make([]*Handle, n)
	for i := range handles {
		handles[i], err = rt.SubmitBatched(context.Background(), 50+i*13, 4+i)
		if err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	for i, h := range handles {
		events := collectBatched(t, h)
		if len(events) != 4+i {
			t.Fatalf("request %d: %d events, want %d", i, len(events), 4+i)
		}
		if r := h.FinishReason(); r != FinishLength {
			t.Fatalf("request %d finished %q", i, r)
		}
	}
}

// Close aborts in-flight batched requests: every handle terminates exactly
// once with FinishShutdown and a drained Next.
func TestBatchedCloseAborts(t *testing.T) {
	rt := pacedRuntime(t)
	const n = 4
	handles := make([]*Handle, n)
	var err error
	for i := range handles {
		handles[i], err = rt.SubmitBatched(context.Background(), 64, 100000)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Let at least one request start generating before the kill.
	h0 := handles[0]
	if evs := h0.Next(context.Background()); evs == nil {
		t.Fatal("stream ended before any tokens")
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	for i, h := range handles {
		terminal := 0
		deadline, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		for {
			evs := h.Next(deadline)
			if evs == nil {
				if deadline.Err() != nil {
					t.Fatalf("request %d never terminated after Close", i)
				}
				break
			}
			for _, ev := range evs {
				if ev.Finished {
					terminal++
				}
			}
		}
		cancel()
		if terminal != 1 {
			t.Fatalf("request %d: %d terminal events", i, terminal)
		}
		if r := h.FinishReason(); r != FinishShutdown {
			t.Fatalf("request %d finished %q", i, r)
		}
	}
}

// Concurrent batched submitters, half of which cancel mid-stream: every
// stream sees exactly one terminal event and every handle's Done fires.
func TestBatchedTerminatesExactlyOnceUnderLoad(t *testing.T) {
	rt := testRuntime(t, true)
	const n = 16
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			h, err := rt.SubmitBatched(context.Background(), 40+k*7, 6+k%9)
			if err != nil {
				errs <- err
				return
			}
			if k%2 == 1 {
				h.Cancel() // race the cancel against natural completion
			}
			deadline, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			terminal := 0
			for {
				evs := h.Next(deadline)
				if evs == nil {
					if deadline.Err() != nil {
						errs <- fmt.Errorf("request %d timed out", k)
						return
					}
					break
				}
				for _, ev := range evs {
					if ev.Finished {
						terminal++
					}
				}
			}
			if terminal != 1 {
				errs <- fmt.Errorf("request %d: %d terminal events", k, terminal)
				return
			}
			select {
			case <-h.Done():
			default:
				errs <- fmt.Errorf("request %d: done not closed", k)
				return
			}
			errs <- nil
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSteadyStateAllocsPerToken is the regression guard for the zero-alloc
// serving path (wired into `make check`): once the pools are warm, driving a
// request through submit → schedule → micro-batch → slab delivery must not
// allocate per token. AllocsPerRun cannot observe the driver/worker
// goroutines, so the guard reads process-wide Mallocs around a measured
// stream with GC parked. Per-request setup (the submission, the request,
// the handle) is real but amortizes to well under one allocation per token
// at any realistic output length; the bound enforces exactly that.
func TestSteadyStateAllocsPerToken(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; guard runs in normal builds")
	}
	rt, err := Start(Config{
		Model:           model.Qwen25_14B,
		GPU:             gpu.L20,
		Topo:            network.IntraNode(4, network.PCIe),
		Scheduler:       sched.NewDefaultThrottle(),
		Async:           true,
		TimeScale:       0,
		WatchdogTimeout: -1, // no ticker goroutine mid-measurement
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	run := func(tokens int) {
		h, err := rt.SubmitBatched(context.Background(), 128, tokens)
		if err != nil {
			t.Fatal(err)
		}
		for {
			if evs := h.Next(context.Background()); evs == nil {
				return
			}
		}
	}
	// Warm every pool on the path: slabs, micro-batches, scheduler batches,
	// worker input scratch.
	for i := 0; i < 4; i++ {
		run(512)
	}

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	goruntime.GC()
	const tokens = 4096
	var before, after goruntime.MemStats
	goruntime.ReadMemStats(&before)
	run(tokens)
	goruntime.ReadMemStats(&after)
	perToken := float64(after.Mallocs-before.Mallocs) / tokens
	t.Logf("allocs/token = %.4f (%d mallocs / %d tokens)",
		perToken, after.Mallocs-before.Mallocs, tokens)
	if perToken >= 0.5 {
		t.Fatalf("steady-state serving allocates %.3f objects/token (want < 0.5): "+
			"a per-token allocation crept back into the hot path", perToken)
	}
}
