package runtime

import (
	"log/slog"
	"time"

	"gllm/internal/kvcache"
	"gllm/internal/obs"
	"gllm/internal/request"
	"gllm/internal/sched"
)

// driverLoop is the driver worker (§3.3): it owns the request pool, the KV
// cache and the scheduler, admits requests from the frontend, injects
// micro-batches into stage 0, and retires batches arriving from the last
// stage — emitting token events to the submitters.
//
// It is also the single authority over request termination: every admitted
// submission leaves through finishSub exactly once (normal completion,
// cancellation, timeout, or shutdown), which closes its done and events
// channels and releases its admission accounting. Cancellation is
// cooperative — requests with work in an executing micro-batch are parked
// in pendingCancels and aborted at the next batch boundary, so a freed KV
// sequence is never referenced by in-flight compute.
func (rt *Runtime) driverLoop() {
	defer close(rt.stopped)

	depth := len(rt.workers)
	pool := sched.NewPool(kvcache.New(rt.kvCapacity, rt.cfg.KVBlockSize), depth)
	pool.EnablePrefixCache = rt.cfg.EnablePrefixCache
	pool.AllowPipelinedChunks = rt.cfg.EnableCPP
	subs := make(map[int64]*submission)
	pendingCancels := make(map[int64]*submission)

	inFlight := 0
	seq := 0

	// publishGauges refreshes the pool-derived Snapshot gauges. Called when
	// the driver is about to block (so idle-state reads are exact), when the
	// pipeline drains, and periodically under sustained load — NOT on every
	// loop iteration: walking the pool and taking rt.mu per event used to
	// dominate driver bookkeeping.
	publishGauges := func() {
		hits, hitTokens := pool.KV.PrefixHits()
		g := poolGauges{
			waitingPrefill:  pool.WaitingPrefillTokens(),
			runningDecode:   pool.RunningDecode(),
			kvFreeRate:      pool.KV.FreeRate(),
			preemptions:     pool.Preemptions(),
			kvTotalBlocks:   pool.KV.TotalBlocks(),
			kvFreeBlocks:    pool.KV.FreeBlocks(),
			kvCachedBlocks:  pool.KV.CachedBlocks(),
			prefixHits:      hits,
			prefixHitTokens: hitTokens,
		}
		rt.mu.Lock()
		rt.gauges = g
		rt.mu.Unlock()
	}

	// recordReqSpans converts a traced request's lifecycle timestamps into
	// replica-side spans (queue wait, prefill, decode iterations) at
	// termination. Aborted requests record the phases they reached, ending
	// at the abort time, so spans terminate correctly on every exit path.
	recordReqSpans := func(req *request.Request, reason FinishReason) {
		rr := rt.cfg.ReqSpans
		if rr == nil || req.Trace == 0 {
			return
		}
		end := req.Finish
		if end == 0 {
			end = time.Since(rt.start)
		}
		at := func(d time.Duration) time.Time { return rt.start.Add(d) }
		qEnd := req.FirstSchedule
		if qEnd == 0 {
			qEnd = end
		}
		rr.Record(req.Trace, obs.SpanQueue, obs.SideReplica, "", 0, at(req.Arrival), at(qEnd))
		if req.FirstSchedule > 0 {
			pEnd := end
			if req.HasFirstToken() {
				pEnd = req.FirstToken
			}
			rr.Record(req.Trace, obs.SpanPrefill, obs.SideReplica, "", 0, at(req.FirstSchedule), at(pEnd))
		}
		if req.HasFirstToken() {
			rr.Record(req.Trace, obs.SpanDecode, obs.SideReplica, string(reason), 0, at(req.FirstToken), at(end))
		}
	}

	// finishSub finalizes a submission: exactly once per request, after its
	// last event was sent. Closing done before the delivery transport lets
	// FinishReason observe the reason as soon as the stream drains.
	finishSub := func(sub *submission, reason FinishReason) {
		sub.reason = reason
		recordReqSpans(sub.req, reason)
		close(sub.done)
		if sub.batched {
			sub.dmu.Lock()
			sub.dclosed = true
			sub.dmu.Unlock()
			sub.notifyDelivery()
		} else {
			close(sub.events)
		}
		delete(subs, sub.req.ID)
		delete(pendingCancels, sub.req.ID)
		rt.resident.Store(int64(len(subs)))
		rt.admittedKV.Add(-sub.kvDemand)
		if reason != FinishLength {
			rt.cancelled.Add(1)
			// Record the abort with its real terminal reason so it never
			// pollutes completion latency stats.
			rt.collector.ObserveAborted(sub.req, string(reason))
			rt.logEvent(slog.LevelInfo, "request aborted",
				"id", sub.req.ID, "reason", string(reason), "generated", sub.req.Generated())
		}
	}

	// abortEvent terminates a request early: one synthetic, empty-Text
	// terminal event carrying the reason, then finalization. Never blocks:
	// slabs grow as needed, and an unfinished per-token request has emitted
	// at most OutputLen-1 tokens into an OutputLen-sized buffer.
	abortEvent := func(sub *submission, reason FinishReason) {
		ev := TokenEvent{
			ReqID:    sub.req.ID,
			Index:    sub.req.Generated(),
			Finished: true,
			Reason:   reason,
		}
		if sub.batched {
			sub.dmu.Lock()
			if sub.pending == nil {
				sub.pending = slabPool.Get().(*eventSlab)
			}
			sub.pending.evs = append(sub.pending.evs, ev)
			sub.dmu.Unlock()
		} else {
			sub.events <- ev
		}
		finishSub(sub, reason) // closes the stream and wakes batched waiters
	}

	// abortResident removes an admitted, quiescent request from the pool,
	// releasing its KV blocks, and terminates its handle.
	abortResident := func(sub *submission, reason FinishReason) {
		pool.Abort(sub.req)
		abortEvent(sub, reason)
	}

	// quiescent reports whether the request has no work inside an executing
	// micro-batch (the only moment it may be aborted).
	quiescent := func(r *request.Request) bool {
		return r.InFlightChunks() == 0 && !r.DecodeBusy()
	}

	// emit streams the tokens a request gained since its last delivery
	// (indices Emitted..Generated-1). Idempotent within a batch — the
	// emitted watermark on the request replaces the per-batch progress map
	// this used to allocate. Never blocks the driver: batched submissions
	// get one slab append + wakeup, per-token channels are buffered for the
	// full output.
	emit := func(r *request.Request) {
		sub := subs[r.ID]
		if sub == nil {
			return
		}
		gen := r.Generated()
		pre := r.Emitted()
		fin := r.Finished()
		if pre == gen && !fin {
			return
		}
		if sub.batched {
			sub.dmu.Lock()
			s := sub.pending
			if s == nil {
				s = slabPool.Get().(*eventSlab)
				sub.pending = s
			}
			for i := pre; i < gen; i++ {
				tok := TokenValue(r.ID, i)
				ev := TokenEvent{
					ReqID:    r.ID,
					Index:    i,
					Token:    tok,
					Text:     TokenText(tok),
					Finished: fin && i == gen-1,
				}
				if ev.Finished {
					ev.Reason = FinishLength
				}
				s.evs = append(s.evs, ev)
			}
			sub.dmu.Unlock()
			sub.notifyDelivery()
		} else {
			for i := pre; i < gen; i++ {
				tok := TokenValue(r.ID, i)
				ev := TokenEvent{
					ReqID:    r.ID,
					Index:    i,
					Token:    tok,
					Text:     TokenText(tok),
					Finished: fin && i == gen-1,
				}
				if ev.Finished {
					ev.Reason = FinishLength
				}
				sub.events <- ev
			}
		}
		r.MarkEmitted(gen)
		if fin {
			rt.collector.Observe(r)
			finishSub(sub, FinishLength)
		}
	}

	killed := false

	tryInject := func() {
		for inFlight < depth {
			b := rt.cfg.Scheduler.Schedule(pool, time.Since(rt.start))
			if b.Empty() {
				pool.PutBatch(b)
				return
			}
			seq++
			rt.iterations.Add(1)
			inFlight++
			rt.inFlight.Store(int64(inFlight))
			rt.beat()
			mb := mbPool.Get().(*microBatch)
			mb.seq, mb.batch, mb.shape = seq, b, b.Shape()
			prep := rt.cfg.Prep.PrepTime(len(b.Chunks)+len(b.Decodes), b.Tokens())
			prepStart := time.Since(rt.start)
			if rt.cfg.Async {
				// Dual-phase: metadata first, to every stage, so workers
				// prepare inputs while earlier batches still compute.
				for _, w := range rt.workers {
					w.metaCh <- mb
				}
				rt.sleepScaled(prep) // Token Throttling residual only
			} else {
				// Coupled runtime: input preparation on the critical path.
				rt.sleepScaled(prep)
			}
			rt.cfg.Spans.Record(obs.PrepStage, obs.KindPrep, mb.seq, mb.shape.Tokens(),
				prepStart, time.Since(rt.start))
			rt.workers[0].workCh <- mb
		}
	}

	// reapCancels aborts every cancel-requested request that has become
	// quiescent (called after each batch retires).
	reapCancels := func() {
		for _, sub := range pendingCancels {
			if quiescent(sub.req) {
				abortResident(sub, *sub.abortReason.Load())
			}
		}
	}

	// admit accepts a submission arriving from the frontend queue.
	admit := func(sub *submission) {
		if killed {
			abortEvent(sub, FinishShutdown)
			return
		}
		if rp := sub.abortReason.Load(); rp != nil {
			// Cancelled while still queued: never enters the pool.
			abortEvent(sub, *rp)
			return
		}
		subs[sub.req.ID] = sub
		rt.resident.Store(int64(len(subs)))
		pool.Add(sub.req)
		rt.logEvent(slog.LevelDebug, "request admitted",
			"id", sub.req.ID, "prompt", sub.req.PromptLen, "max_tokens", sub.req.OutputLen)
	}

	// handleCancel processes a cancellation notice from the frontend.
	handleCancel := func(sub *submission) {
		if _, ok := subs[sub.req.ID]; !ok {
			// Not yet admitted (admit checks the flag) or already terminal.
			return
		}
		if quiescent(sub.req) {
			abortResident(sub, *sub.abortReason.Load())
		} else {
			pendingCancels[sub.req.ID] = sub
		}
	}

	handleDone := func(mb *microBatch) {
		fin := pool.Complete(mb.batch, time.Since(rt.start))
		// Each request's emitted watermark marks where this batch's tokens
		// start, so no pre-commit progress capture (or map) is needed; a
		// request appears at most once per batch (chunks and decodes are
		// disjoint phases).
		for _, c := range mb.batch.Chunks {
			emit(c.Req)
		}
		for _, d := range mb.batch.Decodes {
			emit(d)
		}
		inFlight--
		rt.beat()
		reapCancels()
		// The batch and its carrier are dead once retired: recycle both.
		pool.PutBatch(mb.batch)
		mb.batch = nil
		mbPool.Put(mb)
		if inFlight == 0 {
			// Publish before the counter stores below: a reader that
			// observes the drained counters then sees exact gauges too
			// (its Stats lock acquire orders after this publish).
			publishGauges()
		}
		rt.finished.Add(int64(len(fin)))
		rt.inFlight.Store(int64(inFlight))
	}

	// shutdownExit terminates every outstanding handle and stops the
	// pipeline. Precondition: inFlight == 0, so every resident request is
	// quiescent. Setting stopping under the write lock fences the frontend:
	// any Submit that already passed the check has completed its channel
	// send (it holds the read lock across the send), so the sweep below
	// provably catches every queued submission — no handle leaks.
	shutdownExit := func() {
		rt.subMu.Lock()
		rt.stopping = true
		rt.subMu.Unlock()
		for {
			select {
			case sub := <-rt.submitCh:
				abortEvent(sub, FinishShutdown)
				continue
			default:
			}
			break
		}
		for _, sub := range subs {
			reason := FinishShutdown
			if rp := sub.abortReason.Load(); rp != nil {
				reason = *rp
			}
			abortResident(sub, reason)
		}
		if rt.cfg.Async {
			for _, w := range rt.workers {
				close(w.metaCh)
			}
		}
		close(rt.workers[0].workCh)
		publishGauges()
		rt.logEvent(slog.LevelInfo, "runtime stopped",
			"finished", rt.finished.Load(), "cancelled", rt.cancelled.Load(),
			"iterations", rt.iterations.Load())
	}

	stopCh := rt.stopCh
	killCh := rt.killCh
	draining := false

	// The five event arms, shared between the non-blocking poll and the
	// blocking wait below.
	onSubmit := func(sub *submission) {
		admit(sub)
		if !killed {
			tryInject()
		}
	}
	onCancel := func(sub *submission) {
		handleCancel(sub)
		if !killed {
			// An abort releases KV, which may unblock scheduling.
			tryInject()
		}
	}
	onDone := func(mb *microBatch) {
		handleDone(mb)
		if !killed {
			tryInject()
		}
	}
	onStop := func() {
		stopCh = nil
		draining = true
		rt.logEvent(slog.LevelInfo, "drain started",
			"resident", len(subs), "in_flight", inFlight)
	}
	onKill := func() {
		killCh = nil
		killed = true
		rt.logEvent(slog.LevelWarn, "kill requested",
			"resident", len(subs), "in_flight", inFlight)
	}

	// Publish the pool gauges at least every gaugePublishEvery events while
	// the loop never goes idle, so saturated-pipeline scrapes stay at most a
	// few micro-batches stale.
	const gaugePublishEvery = 64
	sincePublish := 0
	for {
		if killed {
			if inFlight == 0 {
				shutdownExit()
				return
			}
		} else if draining && inFlight == 0 {
			// Graceful drain: keep scheduling queued and resident work until
			// none remains. If the scheduler cannot place the remainder with
			// an idle pipeline it never will (its decisions depend only on
			// pool state), so the remainder is aborted rather than stalled.
			for {
				select {
				case sub := <-rt.submitCh:
					admit(sub)
					continue
				default:
				}
				break
			}
			tryInject()
			if inFlight == 0 {
				shutdownExit()
				return
			}
		}
		select {
		case sub := <-rt.submitCh:
			onSubmit(sub)
		case sub := <-rt.cancelCh:
			onCancel(sub)
		case q := <-rt.queryCh:
			q.reply <- pool.KV.MatchPrefix(q.group, q.maxTokens)
		case mb := <-rt.doneCh:
			onDone(mb)
		case <-stopCh:
			onStop()
		case <-killCh:
			onKill()
		default:
			// Nothing pending: refresh the gauges, then block. Every reader
			// that observes the counters of a quiesced driver therefore also
			// sees exact gauges.
			publishGauges()
			sincePublish = 0
			select {
			case sub := <-rt.submitCh:
				onSubmit(sub)
			case sub := <-rt.cancelCh:
				onCancel(sub)
			case q := <-rt.queryCh:
				q.reply <- pool.KV.MatchPrefix(q.group, q.maxTokens)
			case mb := <-rt.doneCh:
				onDone(mb)
			case <-stopCh:
				onStop()
			case <-killCh:
				onKill()
			}
		}
		if sincePublish++; sincePublish >= gaugePublishEvery {
			publishGauges()
			sincePublish = 0
		}
	}
}
