package runtime

import (
	"time"

	"gllm/internal/kvcache"
	"gllm/internal/request"
	"gllm/internal/sched"
)

// driverLoop is the driver worker (§3.3): it owns the request pool, the KV
// cache and the scheduler, admits requests from the frontend, injects
// micro-batches into stage 0, and retires batches arriving from the last
// stage — emitting token events to the submitters.
func (rt *Runtime) driverLoop() {
	defer close(rt.stopped)

	depth := len(rt.workers)
	pool := sched.NewPool(kvcache.New(rt.kvCapacity, rt.cfg.KVBlockSize), depth)
	pool.EnablePrefixCache = rt.cfg.EnablePrefixCache
	pool.AllowPipelinedChunks = rt.cfg.EnableCPP
	subs := make(map[int64]*submission)

	inFlight := 0
	iterations := 0
	finished := 0
	seq := 0

	updateSnapshot := func() {
		rt.mu.Lock()
		rt.snapshot = Snapshot{
			Iterations:     iterations,
			InFlight:       inFlight,
			WaitingPrefill: pool.WaitingPrefillTokens(),
			RunningDecode:  pool.RunningDecode(),
			KVFreeRate:     pool.KV.FreeRate(),
			Finished:       finished,
			Preemptions:    pool.Preemptions(),
		}
		rt.mu.Unlock()
	}

	// emit streams the tokens a request gained in this batch (indices
	// pre..Generated-1). Event channels are buffered for the full output,
	// so sends never block the driver.
	emit := func(r *request.Request, pre int) {
		sub := subs[r.ID]
		if sub == nil {
			return
		}
		for i := pre; i < r.Generated(); i++ {
			tok := TokenValue(r.ID, i)
			sub.events <- TokenEvent{
				ReqID:    r.ID,
				Index:    i,
				Token:    tok,
				Text:     TokenText(tok),
				Finished: r.Finished() && i == r.Generated()-1,
			}
		}
		if r.Finished() {
			close(sub.events)
			delete(subs, r.ID)
			rt.mu.Lock()
			rt.collector.Observe(r)
			rt.mu.Unlock()
		}
	}

	tryInject := func() {
		for inFlight < depth {
			b := rt.cfg.Scheduler.Schedule(pool, time.Since(rt.start))
			if b.Empty() {
				return
			}
			seq++
			iterations++
			inFlight++
			mb := &microBatch{seq: seq, batch: b, shape: b.Shape()}
			prep := rt.cfg.Prep.PrepTime(len(b.Chunks)+len(b.Decodes), b.Tokens())
			if rt.cfg.Async {
				// Dual-phase: metadata first, to every stage, so workers
				// prepare inputs while earlier batches still compute.
				for _, w := range rt.workers {
					w.metaCh <- mb
				}
				rt.sleepScaled(prep) // Token Throttling residual only
			} else {
				// Coupled runtime: input preparation on the critical path.
				rt.sleepScaled(prep)
			}
			rt.workers[0].workCh <- mb
		}
	}

	handleDone := func(mb *microBatch) {
		// Capture per-request progress before committing so we can emit
		// exactly the tokens this batch produced.
		pre := make(map[*request.Request]int)
		for _, c := range mb.batch.Chunks {
			pre[c.Req] = c.Req.Generated()
		}
		for _, d := range mb.batch.Decodes {
			pre[d] = d.Generated()
		}
		fin := pool.Complete(mb.batch, time.Since(rt.start))
		for r, g := range pre {
			emit(r, g)
		}
		finished += len(fin)
		inFlight--
	}

	stopCh := rt.stopCh
	draining := false
	for {
		if draining && inFlight == 0 {
			for _, w := range rt.workers {
				if rt.cfg.Async {
					close(w.metaCh)
				}
			}
			close(rt.workers[0].workCh)
			updateSnapshot()
			return
		}
		select {
		case sub := <-rt.submitCh:
			if draining {
				close(sub.events)
				continue
			}
			subs[sub.req.ID] = sub
			pool.Add(sub.req)
			tryInject()
		case mb := <-rt.doneCh:
			handleDone(mb)
			if !draining {
				tryInject()
			}
		case <-stopCh:
			stopCh = nil
			draining = true
		}
		updateSnapshot()
	}
}
