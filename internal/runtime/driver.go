package runtime

import (
	"log/slog"
	"time"

	"gllm/internal/kvcache"
	"gllm/internal/obs"
	"gllm/internal/request"
	"gllm/internal/sched"
)

// driverLoop is the driver worker (§3.3): it owns the request pool, the KV
// cache and the scheduler, admits requests from the frontend, injects
// micro-batches into stage 0, and retires batches arriving from the last
// stage — emitting token events to the submitters.
//
// It is also the single authority over request termination: every admitted
// submission leaves through finishSub exactly once (normal completion,
// cancellation, timeout, or shutdown), which closes its done and events
// channels and releases its admission accounting. Cancellation is
// cooperative — requests with work in an executing micro-batch are parked
// in pendingCancels and aborted at the next batch boundary, so a freed KV
// sequence is never referenced by in-flight compute.
func (rt *Runtime) driverLoop() {
	defer close(rt.stopped)

	depth := len(rt.workers)
	pool := sched.NewPool(kvcache.New(rt.kvCapacity, rt.cfg.KVBlockSize), depth)
	pool.EnablePrefixCache = rt.cfg.EnablePrefixCache
	pool.AllowPipelinedChunks = rt.cfg.EnableCPP
	subs := make(map[int64]*submission)
	pendingCancels := make(map[int64]*submission)

	inFlight := 0
	iterations := 0
	finished := 0
	cancelled := 0
	seq := 0

	updateSnapshot := func() {
		rt.mu.Lock()
		rt.snapshot = Snapshot{
			Iterations:     iterations,
			InFlight:       inFlight,
			WaitingPrefill: pool.WaitingPrefillTokens(),
			RunningDecode:  pool.RunningDecode(),
			KVFreeRate:     pool.KV.FreeRate(),
			Finished:       finished,
			Preemptions:    pool.Preemptions(),
			Resident:       len(subs),
			Cancelled:      cancelled,
		}
		rt.mu.Unlock()
	}

	// finishSub finalizes a submission: exactly once per request, after its
	// last event was sent. Closing done before events lets FinishReason
	// observe the reason as soon as the channel drains.
	finishSub := func(sub *submission, reason FinishReason) {
		sub.reason = reason
		close(sub.done)
		close(sub.events)
		delete(subs, sub.req.ID)
		delete(pendingCancels, sub.req.ID)
		rt.admittedKV.Add(-sub.kvDemand)
		if reason != FinishLength {
			cancelled++
			// Record the abort with its real terminal reason so it never
			// pollutes completion latency stats.
			rt.collector.ObserveAborted(sub.req, string(reason))
			rt.logEvent(slog.LevelInfo, "request aborted",
				"id", sub.req.ID, "reason", string(reason), "generated", sub.req.Generated())
		}
	}

	// abortEvent terminates a request early: one synthetic, empty-Text
	// terminal event carrying the reason, then finalization. The events
	// buffer always has room — an unfinished request has emitted at most
	// OutputLen-1 tokens into an OutputLen-sized buffer.
	abortEvent := func(sub *submission, reason FinishReason) {
		sub.events <- TokenEvent{
			ReqID:    sub.req.ID,
			Index:    sub.req.Generated(),
			Finished: true,
			Reason:   reason,
		}
		finishSub(sub, reason)
	}

	// abortResident removes an admitted, quiescent request from the pool,
	// releasing its KV blocks, and terminates its handle.
	abortResident := func(sub *submission, reason FinishReason) {
		pool.Abort(sub.req)
		abortEvent(sub, reason)
	}

	// quiescent reports whether the request has no work inside an executing
	// micro-batch (the only moment it may be aborted).
	quiescent := func(r *request.Request) bool {
		return r.InFlightChunks() == 0 && !r.DecodeBusy()
	}

	// emit streams the tokens a request gained in this batch (indices
	// pre..Generated-1). Event channels are buffered for the full output,
	// so sends never block the driver.
	emit := func(r *request.Request, pre int) {
		sub := subs[r.ID]
		if sub == nil {
			return
		}
		for i := pre; i < r.Generated(); i++ {
			tok := TokenValue(r.ID, i)
			ev := TokenEvent{
				ReqID:    r.ID,
				Index:    i,
				Token:    tok,
				Text:     TokenText(tok),
				Finished: r.Finished() && i == r.Generated()-1,
			}
			if ev.Finished {
				ev.Reason = FinishLength
			}
			sub.events <- ev
		}
		if r.Finished() {
			rt.collector.Observe(r)
			finishSub(sub, FinishLength)
		}
	}

	killed := false

	tryInject := func() {
		for inFlight < depth {
			b := rt.cfg.Scheduler.Schedule(pool, time.Since(rt.start))
			if b.Empty() {
				return
			}
			seq++
			iterations++
			inFlight++
			rt.beat()
			mb := &microBatch{seq: seq, batch: b, shape: b.Shape()}
			prep := rt.cfg.Prep.PrepTime(len(b.Chunks)+len(b.Decodes), b.Tokens())
			prepStart := time.Since(rt.start)
			if rt.cfg.Async {
				// Dual-phase: metadata first, to every stage, so workers
				// prepare inputs while earlier batches still compute.
				for _, w := range rt.workers {
					w.metaCh <- mb
				}
				rt.sleepScaled(prep) // Token Throttling residual only
			} else {
				// Coupled runtime: input preparation on the critical path.
				rt.sleepScaled(prep)
			}
			rt.cfg.Spans.Record(obs.PrepStage, obs.KindPrep, mb.seq, mb.shape.Tokens(),
				prepStart, time.Since(rt.start))
			rt.workers[0].workCh <- mb
		}
	}

	// reapCancels aborts every cancel-requested request that has become
	// quiescent (called after each batch retires).
	reapCancels := func() {
		for _, sub := range pendingCancels {
			if quiescent(sub.req) {
				abortResident(sub, *sub.abortReason.Load())
			}
		}
	}

	// admit accepts a submission arriving from the frontend queue.
	admit := func(sub *submission) {
		if killed {
			abortEvent(sub, FinishShutdown)
			return
		}
		if rp := sub.abortReason.Load(); rp != nil {
			// Cancelled while still queued: never enters the pool.
			abortEvent(sub, *rp)
			return
		}
		subs[sub.req.ID] = sub
		pool.Add(sub.req)
		rt.logEvent(slog.LevelDebug, "request admitted",
			"id", sub.req.ID, "prompt", sub.req.PromptLen, "max_tokens", sub.req.OutputLen)
	}

	// handleCancel processes a cancellation notice from the frontend.
	handleCancel := func(sub *submission) {
		if _, ok := subs[sub.req.ID]; !ok {
			// Not yet admitted (admit checks the flag) or already terminal.
			return
		}
		if quiescent(sub.req) {
			abortResident(sub, *sub.abortReason.Load())
		} else {
			pendingCancels[sub.req.ID] = sub
		}
	}

	handleDone := func(mb *microBatch) {
		// Capture per-request progress before committing so we can emit
		// exactly the tokens this batch produced.
		pre := make(map[*request.Request]int)
		for _, c := range mb.batch.Chunks {
			pre[c.Req] = c.Req.Generated()
		}
		for _, d := range mb.batch.Decodes {
			pre[d] = d.Generated()
		}
		fin := pool.Complete(mb.batch, time.Since(rt.start))
		for r, g := range pre {
			emit(r, g)
		}
		finished += len(fin)
		inFlight--
		rt.beat()
		reapCancels()
	}

	// shutdownExit terminates every outstanding handle and stops the
	// pipeline. Precondition: inFlight == 0, so every resident request is
	// quiescent. Setting stopping under the write lock fences the frontend:
	// any Submit that already passed the check has completed its channel
	// send (it holds the read lock across the send), so the sweep below
	// provably catches every queued submission — no handle leaks.
	shutdownExit := func() {
		rt.subMu.Lock()
		rt.stopping = true
		rt.subMu.Unlock()
		for {
			select {
			case sub := <-rt.submitCh:
				abortEvent(sub, FinishShutdown)
				continue
			default:
			}
			break
		}
		for _, sub := range subs {
			reason := FinishShutdown
			if rp := sub.abortReason.Load(); rp != nil {
				reason = *rp
			}
			abortResident(sub, reason)
		}
		if rt.cfg.Async {
			for _, w := range rt.workers {
				close(w.metaCh)
			}
		}
		close(rt.workers[0].workCh)
		updateSnapshot()
		rt.logEvent(slog.LevelInfo, "runtime stopped",
			"finished", finished, "cancelled", cancelled, "iterations", iterations)
	}

	stopCh := rt.stopCh
	killCh := rt.killCh
	draining := false
	for {
		if killed {
			if inFlight == 0 {
				shutdownExit()
				return
			}
		} else if draining && inFlight == 0 {
			// Graceful drain: keep scheduling queued and resident work until
			// none remains. If the scheduler cannot place the remainder with
			// an idle pipeline it never will (its decisions depend only on
			// pool state), so the remainder is aborted rather than stalled.
			for {
				select {
				case sub := <-rt.submitCh:
					admit(sub)
					continue
				default:
				}
				break
			}
			tryInject()
			if inFlight == 0 {
				shutdownExit()
				return
			}
		}
		select {
		case sub := <-rt.submitCh:
			admit(sub)
			if !killed {
				tryInject()
			}
		case sub := <-rt.cancelCh:
			handleCancel(sub)
			if !killed {
				// An abort releases KV, which may unblock scheduling.
				tryInject()
			}
		case mb := <-rt.doneCh:
			handleDone(mb)
			if !killed {
				tryInject()
			}
		case <-stopCh:
			stopCh = nil
			draining = true
			rt.logEvent(slog.LevelInfo, "drain started",
				"resident", len(subs), "in_flight", inFlight)
		case <-killCh:
			killCh = nil
			killed = true
			rt.logEvent(slog.LevelWarn, "kill requested",
				"resident", len(subs), "in_flight", inFlight)
		}
		updateSnapshot()
	}
}
