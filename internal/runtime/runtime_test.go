package runtime

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"gllm/internal/gpu"
	"gllm/internal/model"
	"gllm/internal/network"
	"gllm/internal/sched"
)

func testRuntime(t *testing.T, async bool) *Runtime {
	t.Helper()
	rt, err := Start(Config{
		Model:     model.Qwen25_14B,
		GPU:       gpu.L20,
		Topo:      network.IntraNode(4, network.PCIe),
		Scheduler: sched.NewDefaultThrottle(),
		Async:     async,
		TimeScale: 0, // no sleeping: as fast as possible
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := rt.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return rt
}

func collect(t *testing.T, h *Handle) []TokenEvent {
	t.Helper()
	var events []TokenEvent
	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev, ok := <-h.Events:
			if !ok {
				return events
			}
			events = append(events, ev)
		case <-deadline:
			t.Fatalf("timed out after %d events", len(events))
		}
	}
}

func TestSubmitStreamsAllTokens(t *testing.T) {
	rt := testRuntime(t, true)
	h, err := rt.Submit(100, 20)
	if err != nil {
		t.Fatal(err)
	}
	events := collect(t, h)
	if len(events) != 20 {
		t.Fatalf("events = %d, want 20", len(events))
	}
	for i, ev := range events {
		if ev.Index != i {
			t.Fatalf("event %d has index %d", i, ev.Index)
		}
		if ev.ReqID != h.ID {
			t.Fatalf("event req = %d, want %d", ev.ReqID, h.ID)
		}
		if ev.Text == "" {
			t.Fatal("empty token text")
		}
		if ev.Finished != (i == 19) {
			t.Fatalf("finished flag wrong at %d", i)
		}
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	rt := testRuntime(t, true)
	const n = 32
	var wg sync.WaitGroup
	errs := make(chan error, n)
	counts := make(chan int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			h, err := rt.Submit(50+k*7, 5+k%11)
			if err != nil {
				errs <- err
				return
			}
			got := 0
			for range h.Events {
				got++
			}
			counts <- got
		}(i)
	}
	wg.Wait()
	close(errs)
	close(counts)
	for err := range errs {
		t.Fatal(err)
	}
	total := 0
	for c := range counts {
		if c == 0 {
			t.Fatal("a request produced no tokens")
		}
		total += c
	}
	if total == 0 {
		t.Fatal("no tokens at all")
	}
	rep := rt.Report()
	if rep.Requests != n {
		t.Fatalf("report requests = %d, want %d", rep.Requests, n)
	}
}

func TestSyncModeServesIdenticalContent(t *testing.T) {
	async := testRuntime(t, true)
	syncRt := testRuntime(t, false)

	ha, err := async.Submit(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := syncRt.Submit(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	ea := collect(t, ha)
	es := collect(t, hs)
	if len(ea) != len(es) {
		t.Fatalf("token counts differ: %d vs %d", len(ea), len(es))
	}
	// Same request ID (both are request 0 of their runtime) must yield the
	// same content — generation is scheduling- and runtime-invariant.
	for i := range ea {
		if ea[i].Token != es[i].Token || ea[i].Text != es[i].Text {
			t.Fatalf("content diverged at %d: %v vs %v", i, ea[i], es[i])
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	rt := testRuntime(t, true)
	if _, err := rt.Submit(0, 5); err == nil {
		t.Fatal("zero prompt accepted")
	}
	if _, err := rt.Submit(5, 0); err == nil {
		t.Fatal("zero output accepted")
	}
	if _, err := rt.Submit(100_000_000, 5); err == nil {
		t.Fatal("oversized prompt accepted")
	}
}

func TestStartValidation(t *testing.T) {
	base := Config{
		Model:     model.Qwen25_14B,
		GPU:       gpu.L20,
		Topo:      network.IntraNode(4, network.PCIe),
		Scheduler: sched.NewDefaultThrottle(),
	}
	noSched := base
	noSched.Scheduler = nil
	if _, err := Start(noSched); err == nil {
		t.Fatal("nil scheduler accepted")
	}
	tooBig := base
	tooBig.Model = model.Llama31_100B
	tooBig.Topo = network.IntraNode(2, network.PCIe)
	if _, err := Start(tooBig); err == nil {
		t.Fatal("oversized model accepted")
	}
}

func TestShutdownStopsSubmit(t *testing.T) {
	rt, err := Start(Config{
		Model:     model.Qwen25_14B,
		GPU:       gpu.L20,
		Topo:      network.IntraNode(2, network.PCIe),
		Scheduler: sched.NewDefaultThrottle(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Submit(10, 5); err != ErrStopped {
		t.Fatalf("Submit after shutdown = %v, want ErrStopped", err)
	}
	// Idempotent.
	if err := rt.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestStatsProgress(t *testing.T) {
	rt := testRuntime(t, true)
	h, err := rt.Submit(128, 10)
	if err != nil {
		t.Fatal(err)
	}
	collect(t, h)
	// Poll until the driver's snapshot catches up.
	deadline := time.After(5 * time.Second)
	for {
		st := rt.Stats()
		if st.Finished == 1 && st.InFlight == 0 {
			if st.Iterations == 0 {
				t.Fatal("no iterations counted")
			}
			if st.KVFreeRate != 1 {
				t.Fatalf("KV not drained: free rate %v", st.KVFreeRate)
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("stats never settled: %+v", st)
		case <-time.After(time.Millisecond):
		}
	}
}

func TestAsyncPreparesEarly(t *testing.T) {
	rt := testRuntime(t, true)
	var hs []*Handle
	for i := 0; i < 16; i++ {
		h, err := rt.Submit(256, 32)
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	for _, h := range hs {
		collect(t, h)
	}
	// With a loaded pipeline, downstream stages should have seen metadata
	// before activations at least some of the time.
	early := int64(0)
	for _, w := range rt.workers {
		early += w.preparedEarly.Load()
	}
	if early == 0 {
		t.Fatal("no batch was ever prepared ahead of activations")
	}
}

func TestTokenDeterminism(t *testing.T) {
	if TokenValue(3, 7) != TokenValue(3, 7) {
		t.Fatal("TokenValue not deterministic")
	}
	if TokenValue(3, 7) == TokenValue(3, 8) || TokenValue(3, 7) == TokenValue(4, 7) {
		t.Fatal("TokenValue collisions across adjacent inputs")
	}
}

func TestDetokenize(t *testing.T) {
	text := Detokenize(1, 5)
	if text == "" {
		t.Fatal("empty detokenization")
	}
	if words := strings.Fields(text); len(words) != 5 {
		t.Fatalf("detokenized %d words, want 5", len(words))
	}
	if Detokenize(1, 5) != Detokenize(1, 5) {
		t.Fatal("Detokenize not deterministic")
	}
}

func TestTokenizeLen(t *testing.T) {
	if TokenizeLen("hello world foo") != 3 {
		t.Fatal("tokenize count wrong")
	}
	if TokenizeLen("") != 1 {
		t.Fatal("empty prompt should count 1 token")
	}
	if TokenizeLen("   ") != 1 {
		t.Fatal("blank prompt should count 1 token")
	}
}

func TestScaledClockRuns(t *testing.T) {
	// A tiny TimeScale exercises the sleeping paths without slowing tests.
	rt, err := Start(Config{
		Model:     model.Qwen25_14B,
		GPU:       gpu.L20,
		Topo:      network.IntraNode(2, network.PCIe),
		Scheduler: sched.NewDefaultThrottle(),
		Async:     true,
		TimeScale: 1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = rt.Shutdown(ctx)
	}()
	h, err := rt.Submit(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(collect(t, h)); got != 4 {
		t.Fatalf("events = %d", got)
	}
}

func TestConversationWithPrefixCache(t *testing.T) {
	rt, err := Start(Config{
		Model:             model.Qwen25_14B,
		GPU:               gpu.L20,
		Topo:              network.IntraNode(4, network.PCIe),
		Scheduler:         sched.NewDefaultThrottle(),
		Async:             true,
		EnablePrefixCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = rt.Shutdown(ctx)
	}()

	// A 4-turn conversation: each turn's prompt extends the accumulated
	// context, declared as the shared prefix of group 7.
	ctxLen := 0
	for turn := 0; turn < 4; turn++ {
		prompt := ctxLen + 50
		out := 20
		h, err := rt.SubmitWithPrefix(prompt, out, 7, ctxLen)
		if err != nil {
			t.Fatalf("turn %d: %v", turn, err)
		}
		if got := len(collect(t, h)); got != out {
			t.Fatalf("turn %d produced %d tokens", turn, got)
		}
		ctxLen = prompt + out
	}
	rep := rt.Report()
	if rep.Requests != 4 {
		t.Fatalf("finished %d/4 turns", rep.Requests)
	}
}

func TestSubmitWithPrefixValidation(t *testing.T) {
	rt := testRuntime(t, true)
	if _, err := rt.SubmitWithPrefix(10, 5, 1, -1); err == nil {
		t.Fatal("negative shared prefix accepted")
	}
	if _, err := rt.SubmitWithPrefix(10, 5, 1, 11); err == nil {
		t.Fatal("shared prefix > prompt accepted")
	}
}

func TestRuntimeCPPMode(t *testing.T) {
	rt, err := Start(Config{
		Model:     model.Qwen25_14B,
		GPU:       gpu.L20,
		Topo:      network.IntraNode(4, network.PCIe),
		Scheduler: sched.NewDefaultThrottle(),
		Async:     true,
		EnableCPP: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = rt.Shutdown(ctx)
	}()
	// A long prompt whose chunks pipeline across micro-batches.
	h, err := rt.Submit(9000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(collect(t, h)); got != 4 {
		t.Fatalf("tokens = %d", got)
	}
}

func TestSyncRuntimeServesConcurrentLoad(t *testing.T) {
	rt := testRuntime(t, false) // coupled mode
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			h, err := rt.Submit(40+k, 3)
			if err != nil {
				t.Error(err)
				return
			}
			for range h.Events {
			}
		}(i)
	}
	wg.Wait()
	if rep := rt.Report(); rep.Requests != 12 {
		t.Fatalf("finished %d/12", rep.Requests)
	}
}
