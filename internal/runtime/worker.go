package runtime

import (
	"sync"
	"sync/atomic"
	"time"

	"gllm/internal/obs"
)

// worker is one pipeline-stage worker process. In async mode it runs two
// goroutines: a metadata loop that prepares input descriptors as soon as
// the driver's broadcast arrives (overlapping preparation with compute of
// earlier batches — the paper's "preemptive metadata scheduling"), and a
// compute loop that executes micro-batches and forwards activations.
type worker struct {
	rt     *Runtime
	idx    int
	layers int

	metaCh chan *microBatch
	workCh chan *microBatch
	next   *worker

	// prepSeq is the highest micro-batch seq whose inputs this stage has
	// prepared. The driver hands seqs out strictly increasing and metaCh is
	// FIFO, so a single watermark (guarded by prepMu, signalled through
	// prepCond) replaces the per-batch channel+map the prep handshake used
	// to allocate.
	prepMu   sync.Mutex
	prepCond *sync.Cond
	prepSeq  int
	// inputs is the stage's reusable input-descriptor scratch; only the
	// goroutine that builds inputs touches it (metaLoop in async mode, the
	// compute loop otherwise).
	inputs []inputDesc
	// PreparedEarly counts batches whose inputs were ready before the
	// activations arrived (observability for the overlap design).
	preparedEarly atomic.Int64
	computed      atomic.Int64
	// busyNanos is the stage's cumulative execute wall-clock time (the
	// numerator of Snapshot.BubbleRate).
	busyNanos atomic.Int64
}

func newWorker(rt *Runtime, idx int) *worker {
	w := &worker{
		rt:     rt,
		idx:    idx,
		layers: rt.stageLayers[idx],
		metaCh: make(chan *microBatch, 2*len(rt.stageLayers)+4),
		workCh: make(chan *microBatch, 2*len(rt.stageLayers)+4),
	}
	w.prepCond = sync.NewCond(&w.prepMu)
	return w
}

// start wires the worker to its successor and spawns its goroutines.
func (w *worker) start(hasNext bool) {
	if hasNext {
		w.next = w.rt.workers[w.idx+1]
	}
	if w.rt.cfg.Async {
		go w.metaLoop()
	}
	go w.computeLoop()
}

// inputDesc is the per-sequence input metadata a stage builds before it can
// launch its kernels (token positions, context lengths).
type inputDesc struct {
	reqID  int64
	tokens int
	ctx    int
}

// buildInputs constructs the stage's input descriptors from a metadata
// packet into the worker's reusable scratch. This is the work that the
// async runtime hides off the critical path.
func (w *worker) buildInputs(mb *microBatch) {
	ins := w.inputs[:0]
	for _, c := range mb.batch.Chunks {
		ins = append(ins, inputDesc{reqID: c.Req.ID, tokens: c.Tokens, ctx: c.CtxStart})
	}
	for _, d := range mb.batch.Decodes {
		ins = append(ins, inputDesc{reqID: d.ID, tokens: 1, ctx: d.ContextLen()})
	}
	w.inputs = ins
}

// metaLoop receives metadata broadcasts and prepares inputs ahead of the
// activations, advancing the prepared watermark.
func (w *worker) metaLoop() {
	for mb := range w.metaCh {
		w.buildInputs(mb)
		w.prepMu.Lock()
		w.prepSeq = mb.seq
		w.prepMu.Unlock()
		w.prepCond.Broadcast()
	}
}

// computeLoop executes micro-batches in arrival order and forwards
// activations downstream (or retires the batch to the driver at the last
// stage).
func (w *worker) computeLoop() {
	defer func() {
		if w.next != nil {
			close(w.next.workCh)
		}
	}()
	for mb := range w.workCh {
		if w.rt.cfg.Async {
			w.prepMu.Lock()
			if w.prepSeq >= mb.seq {
				w.prepMu.Unlock()
				w.preparedEarly.Add(1)
			} else {
				for w.prepSeq < mb.seq {
					w.prepCond.Wait()
				}
				w.prepMu.Unlock()
			}
		} else {
			// Coupled runtime: metadata travels with activations and inputs
			// are built on the critical path.
			w.buildInputs(mb)
		}
		if fault := w.rt.cfg.StageFault; fault != nil {
			// Injected stall (wall clock, not modeled time); Close cuts it
			// short via sleepWall's kill select.
			if d := fault(w.idx, mb.seq); d > 0 {
				w.rt.sleepWall(d)
			}
		}
		execStart := time.Since(w.rt.start)
		w.rt.sleepScaled(w.rt.cost.StageTime(mb.shape, w.layers))
		execEnd := time.Since(w.rt.start)
		w.busyNanos.Add(int64(execEnd - execStart))
		w.rt.cfg.Spans.Record(w.idx, obs.KindExec, mb.seq, mb.shape.Tokens(), execStart, execEnd)
		w.computed.Add(1)
		if w.next != nil {
			actBytes := int64(mb.shape.Tokens()) * w.rt.cfg.Model.ActivationBytesPerToken()
			w.rt.sleepScaled(w.rt.cfg.Topo.Hop(w.idx).TransferTime(actBytes))
			w.rt.cfg.Spans.Record(w.idx, obs.KindXfer, mb.seq, mb.shape.Tokens(),
				execEnd, time.Since(w.rt.start))
			w.next.workCh <- mb
			continue
		}
		w.rt.doneCh <- mb
	}
}
