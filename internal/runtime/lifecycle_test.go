package runtime

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"gllm/internal/gpu"
	"gllm/internal/model"
	"gllm/internal/network"
	"gllm/internal/sched"
)

// startRuntime builds a runtime from the standard test deployment with
// config overrides, cleaning up with an immediate Close.
func startRuntime(t *testing.T, mutate func(*Config)) *Runtime {
	t.Helper()
	cfg := Config{
		Model:     model.Qwen25_14B,
		GPU:       gpu.L20,
		Topo:      network.IntraNode(4, network.PCIe),
		Scheduler: sched.NewDefaultThrottle(),
		Async:     true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	return rt
}

// stallStage returns a fault injector stalling every micro-batch at stage 0
// for d (paces retirement so lifecycle transitions are observable).
func stallStage(d time.Duration) func(stage, seq int) time.Duration {
	return func(stage, seq int) time.Duration {
		if stage == 0 {
			return d
		}
		return 0
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for !cond() {
		select {
		case <-deadline:
			t.Fatalf("timed out waiting for %s", what)
		case <-time.After(time.Millisecond):
		}
	}
}

// Concurrent Shutdown and Close calls must never panic (the seed runtime
// had a check-then-close race on stopCh) and must all return.
func TestConcurrentShutdownAndClose(t *testing.T) {
	rt := startRuntime(t, nil)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if k%2 == 0 {
				_ = rt.Shutdown(ctx)
			} else {
				_ = rt.Close()
			}
		}(i)
	}
	wg.Wait()
	if got := rt.Stats().Health; got != HealthStopped {
		t.Fatalf("health after shutdown = %q", got)
	}
}

// Close with queued and in-flight work must close every handle's Events
// channel (the seed driver returned from drain without terminating queued
// submissions, leaking any goroutine ranging over them).
func TestCloseClosesEveryPendingHandle(t *testing.T) {
	rt := startRuntime(t, func(cfg *Config) {
		cfg.StageFault = stallStage(time.Hour) // nothing ever retires
	})
	const n = 8
	handles := make([]*Handle, n)
	for i := range handles {
		h, err := rt.Submit(64, 32)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	done := make(chan FinishReason, n)
	for _, h := range handles {
		go func(h *Handle) {
			for range h.Events {
			}
			done <- h.FinishReason()
		}(h)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		select {
		case reason := <-done:
			if reason != FinishShutdown {
				t.Fatalf("finish reason = %q, want %q", reason, FinishShutdown)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("handle %d still blocked after Close", i)
		}
	}
}

// Graceful Shutdown must finish queued work, not abort it: every handle
// streams its full output with FinishLength.
func TestGracefulShutdownDrainsQueuedWork(t *testing.T) {
	rt := startRuntime(t, nil)
	const n = 8
	handles := make([]*Handle, n)
	for i := range handles {
		h, err := rt.Submit(80+i*13, 6+i)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	for i, h := range handles {
		got := 0
		for range h.Events {
			got++
		}
		if want := 6 + i; got != want {
			t.Fatalf("handle %d streamed %d/%d tokens", i, got, want)
		}
		if reason := h.FinishReason(); reason != FinishLength {
			t.Fatalf("handle %d finish reason = %q", i, reason)
		}
	}
}

// Shutdown with an already-expired deadline still terminates: the remainder
// is aborted and ctx.Err() reported.
func TestShutdownDeadlineAbortsRemainder(t *testing.T) {
	rt := startRuntime(t, func(cfg *Config) {
		cfg.StageFault = stallStage(50 * time.Millisecond)
	})
	h, err := rt.Submit(64, 1000)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := rt.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	for range h.Events {
	}
	if reason := h.FinishReason(); reason != FinishShutdown {
		t.Fatalf("finish reason = %q", reason)
	}
}

// Submissions during a drain are refused with ErrStopped.
func TestSubmitDuringDrainRefused(t *testing.T) {
	rt := startRuntime(t, func(cfg *Config) {
		cfg.StageFault = stallStage(time.Hour)
	})
	if _, err := rt.Submit(64, 100); err != nil {
		t.Fatal(err)
	}
	shutdownDone := make(chan struct{})
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = rt.Shutdown(ctx)
		close(shutdownDone)
	}()
	waitFor(t, "drain to start", func() bool { return rt.Stats().Health == HealthDraining })
	if _, err := rt.Submit(10, 5); !errors.Is(err, ErrStopped) {
		t.Fatalf("Submit during drain = %v, want ErrStopped", err)
	}
	_ = rt.Close()
	<-shutdownDone
}

// Cancelling a running request releases its KV: the free rate returns to
// its pre-submit value and the snapshot counts the cancellation.
func TestCancelFreesKV(t *testing.T) {
	rt := startRuntime(t, func(cfg *Config) {
		cfg.StageFault = stallStage(3 * time.Millisecond) // observable pacing
	})
	if got := rt.Stats().KVFreeRate; got != 1 {
		t.Fatalf("pre-submit KV free rate = %v", got)
	}
	h, err := rt.Submit(512, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "KV to be occupied", func() bool { return rt.Stats().KVFreeRate < 1 })
	h.Cancel()
	h.Cancel() // idempotent
	select {
	case <-h.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled request never terminated")
	}
	if reason := h.FinishReason(); reason != FinishCancelled {
		t.Fatalf("finish reason = %q", reason)
	}
	var last TokenEvent
	n := 0
	for ev := range h.Events {
		last = ev
		n++
	}
	if n == 0 || !last.Finished || last.Reason != FinishCancelled || last.Text != "" {
		t.Fatalf("terminal event = %+v after %d events", last, n)
	}
	waitFor(t, "KV release", func() bool {
		st := rt.Stats()
		return st.KVFreeRate == 1 && st.Cancelled == 1 && st.Resident == 0
	})
}

// SubmitCtx with a deadline aborts the request with FinishTimeout.
func TestSubmitCtxDeadline(t *testing.T) {
	rt := startRuntime(t, func(cfg *Config) {
		cfg.StageFault = stallStage(3 * time.Millisecond)
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	h, err := rt.SubmitCtx(ctx, 256, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	for range h.Events {
	}
	if reason := h.FinishReason(); reason != FinishTimeout {
		t.Fatalf("finish reason = %q, want %q", reason, FinishTimeout)
	}
	waitFor(t, "KV release after timeout", func() bool { return rt.Stats().KVFreeRate == 1 })
}

// The KV-headroom admission gate rejects submissions beyond the configured
// demand with ErrQueueFull, and releases the budget when requests finish.
func TestAdmissionControlRejects(t *testing.T) {
	rt := startRuntime(t, func(cfg *Config) {
		cfg.AdmitKVTokens = 300
		cfg.StageFault = stallStage(time.Hour)
	})
	h, err := rt.Submit(100, 100) // demand 200 of 300
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Submit(100, 100); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-limit Submit = %v, want ErrQueueFull", err)
	}
	if _, err := rt.Submit(50, 40); err != nil { // demand 90 still fits
		t.Fatalf("in-limit Submit = %v", err)
	}
	if got := rt.Stats().Rejected; got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	h.Cancel()
	for range h.Events {
	}
	// The cancelled request's 200-token demand is back.
	waitFor(t, "admission budget release", func() bool {
		_, err := rt.Submit(100, 90)
		return err == nil
	})
}

// An injected stage stall flips health to degraded while work is stuck in
// flight, and Close recovers promptly (stalls are interruptible).
func TestWatchdogDetectsStall(t *testing.T) {
	rt := startRuntime(t, func(cfg *Config) {
		cfg.WatchdogTimeout = 20 * time.Millisecond
		cfg.StageFault = stallStage(time.Hour)
	})
	if _, err := rt.Submit(64, 100); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "degraded health", func() bool { return rt.Stats().Health == HealthDegraded })
	closed := make(chan struct{})
	go func() { _ = rt.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not interrupt the injected stall")
	}
	if got := rt.Stats().Health; got != HealthStopped {
		t.Fatalf("health after close = %q", got)
	}
}

// A healthy runtime under load never reports degraded.
func TestWatchdogQuietWhenHealthy(t *testing.T) {
	rt := startRuntime(t, func(cfg *Config) {
		cfg.WatchdogTimeout = 50 * time.Millisecond
	})
	h, err := rt.Submit(256, 400)
	if err != nil {
		t.Fatal(err)
	}
	for range h.Events {
	}
	if got := rt.Stats().Health; got != HealthOK {
		t.Fatalf("health = %q, want %q", got, HealthOK)
	}
}

// Cancelling a handle whose request already finished is a harmless no-op.
func TestCancelAfterFinish(t *testing.T) {
	rt := startRuntime(t, nil)
	h, err := rt.Submit(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for range h.Events {
		got++
	}
	h.Cancel()
	if got != 4 {
		t.Fatalf("tokens = %d", got)
	}
	if reason := h.FinishReason(); reason != FinishLength {
		t.Fatalf("finish reason = %q", reason)
	}
	if st := rt.Stats(); st.Cancelled != 0 {
		t.Fatalf("cancelled = %d, want 0", st.Cancelled)
	}
}

// Hammering Cancel from many goroutines while requests complete normally
// must not deadlock, double-close, or leak handles.
func TestConcurrentCancelAndComplete(t *testing.T) {
	rt := startRuntime(t, func(cfg *Config) {
		cfg.StageFault = stallStage(500 * time.Microsecond)
	})
	const n = 24
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			h, err := rt.Submit(40+k, 8+k%16)
			if err != nil {
				t.Error(err)
				return
			}
			if k%3 == 0 {
				h.Cancel()
			}
			for range h.Events {
			}
			if h.FinishReason() == "" {
				t.Errorf("request %d terminated without a reason", k)
			}
		}(i)
	}
	wg.Wait()
	waitFor(t, "all requests to leave the pool", func() bool {
		st := rt.Stats()
		return st.Resident == 0 && st.InFlight == 0 && st.KVFreeRate == 1
	})
}

// FinishReason is empty while a request is still live.
func TestFinishReasonBeforeTerminal(t *testing.T) {
	rt := startRuntime(t, func(cfg *Config) {
		cfg.StageFault = stallStage(5 * time.Millisecond)
	})
	h, err := rt.Submit(64, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if reason := h.FinishReason(); reason != "" {
		t.Fatalf("live request finish reason = %q", reason)
	}
	h.Cancel()
	for range h.Events {
	}
}
