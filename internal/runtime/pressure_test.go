package runtime

import (
	"context"
	"testing"
	"time"

	"gllm/internal/gpu"
	"gllm/internal/model"
	"gllm/internal/network"
	"gllm/internal/sched"
)

// TestPressureAndKVGauges exercises the lightweight routing view and the
// KV block accounting the cluster audit's leak check relies on.
func TestPressureAndKVGauges(t *testing.T) {
	rt := testRuntime(t, true)
	p := rt.Pressure()
	if p.Health != HealthOK {
		t.Fatalf("health = %q, want ok", p.Health)
	}
	if p.KVFree != 1 {
		t.Fatalf("idle KVFree = %v, want 1", p.KVFree)
	}
	h, err := rt.Submit(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	collect(t, h)
	st := rt.Stats()
	if st.KVTotalBlocks <= 0 {
		t.Fatalf("KVTotalBlocks = %d", st.KVTotalBlocks)
	}
	// All work retired: nothing may be leaked or cache-resident (no prefix
	// caching in this deployment).
	if st.KVFreeBlocks+st.KVCachedBlocks != st.KVTotalBlocks {
		t.Fatalf("leak: free %d + cached %d != total %d",
			st.KVFreeBlocks, st.KVCachedBlocks, st.KVTotalBlocks)
	}
	if st.KVCachedBlocks != 0 || st.PrefixHits != 0 {
		t.Fatalf("unexpected prefix state: cached %d hits %d", st.KVCachedBlocks, st.PrefixHits)
	}
}

// TestMatchPrefixReportsResidency proves the driver-answered query sees the
// prefix blocks a finished conversation turn registered, and that a
// follow-up submitted with SubmitBatchedPrefix reuses them (PrefixHits).
func TestMatchPrefixReportsResidency(t *testing.T) {
	rt, err := Start(Config{
		Model:             model.Qwen25_14B,
		GPU:               gpu.L20,
		Topo:              network.IntraNode(4, network.PCIe),
		Scheduler:         sched.NewDefaultThrottle(),
		Async:             true,
		EnablePrefixCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	const group, prompt, out = int64(7), 256, 4
	if got := rt.MatchPrefix(group, prompt); got != 0 {
		t.Fatalf("cold MatchPrefix = %d, want 0", got)
	}
	h, err := rt.SubmitBatchedPrefix(context.Background(), prompt, out, group, 0)
	if err != nil {
		t.Fatal(err)
	}
	drainBatched(t, h)

	got := rt.MatchPrefix(group, prompt)
	if got <= 0 {
		t.Fatalf("MatchPrefix after first turn = %d, want > 0", got)
	}
	// Follow-up turn sharing the first turn's context: must hit the cache.
	h2, err := rt.SubmitBatchedPrefix(context.Background(), prompt+64, out, group, prompt)
	if err != nil {
		t.Fatal(err)
	}
	drainBatched(t, h2)
	st := rt.Stats()
	if st.PrefixHits < 1 || st.PrefixHitTokens <= 0 {
		t.Fatalf("prefix hits = %d (%d tokens), want reuse", st.PrefixHits, st.PrefixHitTokens)
	}
	if rt.Close(); rt.MatchPrefix(group, prompt) != 0 {
		t.Fatal("MatchPrefix on a stopped runtime must report 0")
	}
}

func drainBatched(t *testing.T, h *Handle) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for h.Next(ctx) != nil {
	}
	if ctx.Err() != nil {
		t.Fatal("timed out draining handle")
	}
}

func TestRetryAfterHintDerivation(t *testing.T) {
	cases := []struct {
		name     string
		kvFree   float64
		resident int
		want     time.Duration
	}{
		{"idle", 1, 0, time.Second},
		{"half used", 0.5, 0, time.Second},
		{"three quarters used", 0.25, 0, 3 * time.Second},
		{"saturated", 0, 0, 5 * time.Second},
		{"deep queue", 1, 1024, 5 * time.Second},
		{"saturated and deep", 0, 10240, 30 * time.Second}, // capped
	}
	for _, tc := range cases {
		s := Snapshot{KVFreeRate: tc.kvFree, Resident: tc.resident}
		if got := s.RetryAfterHint(); got != tc.want {
			t.Errorf("%s: Snapshot hint = %v, want %v", tc.name, got, tc.want)
		}
		p := Pressure{KVFree: tc.kvFree, Resident: tc.resident}
		if got := p.RetryAfterHint(); got != tc.want {
			t.Errorf("%s: Pressure hint = %v, want %v", tc.name, got, tc.want)
		}
	}
}
