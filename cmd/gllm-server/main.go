// Command gllm-server starts the OpenAI-compatible serving frontend backed
// by the concurrent gLLM runtime (emulated GPU compute), mirroring the
// paper's api_server entrypoint:
//
//	gllm-server -port 8000 -model-path Qwen2.5-32B -pp 4 -gpu-memory-util 0.9
//
// Then benchmark it with gllm-bench, or query it directly:
//
//	curl -s localhost:8000/v1/completions -d '{"prompt":"hello world","max_tokens":8}'
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gllm/internal/core"
	"gllm/internal/gpu"
	"gllm/internal/model"
	"gllm/internal/network"
	"gllm/internal/runtime"
	"gllm/internal/sched"
	"gllm/internal/server"
)

func main() {
	var (
		port        = flag.Int("port", 8000, "listen port")
		modelPath   = flag.String("model-path", "Qwen2.5-32B", "model name (paper flag --model-path)")
		pp          = flag.Int("pp", 4, "pipeline parallel degree (paper flag --pp)")
		gpuName     = flag.String("gpu", "L20-48GB", "GPU type")
		memUtil     = flag.Float64("gpu-memory-util", 0.9, "GPU memory utilization")
		schedName   = flag.String("sched", "gllm", "scheduler: gllm, sarathi, gllm-no-wt, gllm-no-ut, gllm-ck")
		naive       = flag.Bool("use-naive-schedule", false, "use the Sarathi-Serve policy (paper flag)")
		budget      = flag.Int("token-budget", 2048, "Sarathi token budget")
		iterT       = flag.Int("iterp", 8, "gLLM #T")
		maxP        = flag.Int("maxp", 2048, "gLLM #MaxP")
		minP        = flag.Int("minp", 32, "gLLM #MinP")
		kvThresh    = flag.Float64("kvthresh", 0.05, "gLLM KV_thresh")
		timeScale   = flag.Float64("time-scale", 0, "emulated GPU time scale (0 = no sleeping, 1 = modeled real time)")
		syncRuntime = flag.Bool("sync-runtime", false, "use the coupled (vLLM-like) runtime instead of async")
		enableCPP   = flag.Bool("enable-cpp", false, "pipeline prompt chunks across micro-batches")
		prefixCache = flag.Bool("enable-prefix-cache", false, "reuse KV across requests sharing a prefix group")

		drainTimeout = flag.Duration("drain-timeout", 30*time.Second,
			"graceful-shutdown drain window before in-flight requests are aborted")
		watchdogTimeout = flag.Duration("watchdog-timeout", 30*time.Second,
			"flag /healthz degraded when in-flight work stops retiring for this long (negative disables)")
		admitKVFactor = flag.Float64("admit-kv-factor", 0,
			"reject submissions (HTTP 429) when projected KV demand exceeds this multiple of KV capacity (0 = default 8, negative disables)")
		stallStage = flag.Int("stall-stage", -1,
			"fault injection: pipeline stage to stall (-1 disables)")
		stallDuration = flag.Duration("stall-duration", 0,
			"fault injection: wall-clock stall per micro-batch at -stall-stage")
	)
	flag.Parse()
	if err := run(*port, *modelPath, *pp, *gpuName, *memUtil, *schedName, *naive, *budget,
		core.Params{IterT: *iterT, MaxP: *maxP, MinP: *minP, KVThresh: *kvThresh},
		*timeScale, *syncRuntime, *enableCPP, *prefixCache,
		*drainTimeout, *watchdogTimeout, *admitKVFactor, *stallStage, *stallDuration); err != nil {
		fmt.Fprintln(os.Stderr, "gllm-server:", err)
		os.Exit(1)
	}
}

func run(port int, modelPath string, pp int, gpuName string, memUtil float64,
	schedName string, naive bool, budget int, params core.Params,
	timeScale float64, syncRuntime, enableCPP, prefixCache bool,
	drainTimeout, watchdogTimeout time.Duration, admitKVFactor float64,
	stallStage int, stallDuration time.Duration) error {

	m, err := model.ByName(modelPath)
	if err != nil {
		return err
	}
	g, err := gpu.ByName(gpuName)
	if err != nil {
		return err
	}
	if naive {
		schedName = "sarathi"
	}
	s, err := sched.ByName(schedName, budget, params)
	if err != nil {
		return err
	}
	var fault func(stage, seq int) time.Duration
	if stallStage >= 0 && stallDuration > 0 {
		fault = func(stage, seq int) time.Duration {
			if stage == stallStage {
				return stallDuration
			}
			return 0
		}
		fmt.Printf("gllm-server: FAULT INJECTION: stalling stage %d by %v per micro-batch\n",
			stallStage, stallDuration)
	}
	rt, err := runtime.Start(runtime.Config{
		Model:             m,
		GPU:               g,
		Topo:              network.IntraNode(pp, network.PCIe),
		MemUtil:           memUtil,
		Scheduler:         s,
		Async:             !syncRuntime,
		TimeScale:         timeScale,
		EnableCPP:         enableCPP,
		EnablePrefixCache: prefixCache,
		AdmitKVFactor:     admitKVFactor,
		WatchdogTimeout:   watchdogTimeout,
		StageFault:        fault,
	})
	if err != nil {
		return err
	}

	addr := fmt.Sprintf(":%d", port)
	httpSrv := &http.Server{Addr: addr, Handler: server.New(rt, m.Name)}

	// First signal: graceful — stop accepting connections, drain queued and
	// in-flight generation up to -drain-timeout. Second signal: abort
	// immediately.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		fmt.Fprintf(os.Stderr, "gllm-server: draining (up to %v; signal again to abort)\n", drainTimeout)
		go func() {
			<-sigCh
			fmt.Fprintln(os.Stderr, "gllm-server: aborting")
			_ = rt.Close()
		}()
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := rt.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "gllm-server: drain incomplete: %v\n", err)
		}
		_ = httpSrv.Shutdown(ctx)
	}()

	fmt.Printf("gllm-server: serving %s (pp=%d, %s scheduler, async=%v) on %s\n",
		m.Name, pp, s.Name(), !syncRuntime, addr)
	fmt.Printf("gllm-server: KV capacity %d tokens\n", rt.KVCapacityTokens())
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}
