// Command gllm-server starts the OpenAI-compatible serving frontend backed
// by the concurrent gLLM runtime (emulated GPU compute), mirroring the
// paper's api_server entrypoint:
//
//	gllm-server -port 8000 -model-path Qwen2.5-32B -pp 4 -gpu-memory-util 0.9
//
// Then benchmark it with gllm-bench, or query it directly:
//
//	curl -s localhost:8000/v1/completions -d '{"prompt":"hello world","max_tokens":8}'
//
// Observability:
//
//	gllm-server -trace-out spans.json    # Chrome trace of stage timelines on exit
//	gllm-server -pprof                   # /debug/pprof/ profiling endpoints
//	gllm-server -log-level debug         # structured lifecycle logs on stderr
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gllm/internal/core"
	"gllm/internal/gpu"
	"gllm/internal/model"
	"gllm/internal/network"
	"gllm/internal/obs"
	"gllm/internal/runtime"
	"gllm/internal/sched"
	"gllm/internal/server"
)

// srvOptions carries the observability toggles so run's positional list
// stops growing.
type srvOptions struct {
	traceOut string
	pprofOn  bool
	logLevel string
}

func main() {
	var (
		port        = flag.Int("port", 8000, "listen port")
		modelPath   = flag.String("model-path", "Qwen2.5-32B", "model name (paper flag --model-path)")
		pp          = flag.Int("pp", 4, "pipeline parallel degree (paper flag --pp)")
		gpuName     = flag.String("gpu", "L20-48GB", "GPU type")
		memUtil     = flag.Float64("gpu-memory-util", 0.9, "GPU memory utilization")
		schedName   = flag.String("sched", "gllm", "scheduler: gllm, sarathi, gllm-no-wt, gllm-no-ut, gllm-ck")
		naive       = flag.Bool("use-naive-schedule", false, "use the Sarathi-Serve policy (paper flag)")
		budget      = flag.Int("token-budget", 2048, "Sarathi token budget")
		iterT       = flag.Int("iterp", 8, "gLLM #T")
		maxP        = flag.Int("maxp", 2048, "gLLM #MaxP")
		minP        = flag.Int("minp", 32, "gLLM #MinP")
		kvThresh    = flag.Float64("kvthresh", 0.05, "gLLM KV_thresh")
		timeScale   = flag.Float64("time-scale", 0, "emulated GPU time scale (0 = no sleeping, 1 = modeled real time)")
		syncRuntime = flag.Bool("sync-runtime", false, "use the coupled (vLLM-like) runtime instead of async")
		enableCPP   = flag.Bool("enable-cpp", false, "pipeline prompt chunks across micro-batches")
		prefixCache = flag.Bool("enable-prefix-cache", false, "reuse KV across requests sharing a prefix group")

		drainTimeout = flag.Duration("drain-timeout", 30*time.Second,
			"graceful-shutdown drain window before in-flight requests are aborted")
		watchdogTimeout = flag.Duration("watchdog-timeout", 30*time.Second,
			"flag /healthz degraded when in-flight work stops retiring for this long (negative disables)")
		admitKVFactor = flag.Float64("admit-kv-factor", 0,
			"reject submissions (HTTP 429) when projected KV demand exceeds this multiple of KV capacity (0 = default 8, negative disables)")
		stallStage = flag.Int("stall-stage", -1,
			"fault injection: pipeline stage to stall (-1 disables)")
		stallDuration = flag.Duration("stall-duration", 0,
			"fault injection: wall-clock stall per micro-batch at -stall-stage")

		traceOut = flag.String("trace-out", "",
			"write per-stage exec/xfer/prep spans as Chrome trace-event JSON on shutdown")
		pprofOn = flag.Bool("pprof", false,
			"expose net/http/pprof profiling handlers under /debug/pprof/")
		logLevel = flag.String("log-level", "info",
			"structured log level: debug, info, warn, error")
	)
	flag.Parse()
	opts := srvOptions{traceOut: *traceOut, pprofOn: *pprofOn, logLevel: *logLevel}
	if err := run(*port, *modelPath, *pp, *gpuName, *memUtil, *schedName, *naive, *budget,
		core.Params{IterT: *iterT, MaxP: *maxP, MinP: *minP, KVThresh: *kvThresh},
		*timeScale, *syncRuntime, *enableCPP, *prefixCache,
		*drainTimeout, *watchdogTimeout, *admitKVFactor, *stallStage, *stallDuration,
		opts); err != nil {
		fmt.Fprintln(os.Stderr, "gllm-server:", err)
		os.Exit(1)
	}
}

// parseLevel maps the -log-level flag onto a slog.Level.
func parseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", s)
}

func run(port int, modelPath string, pp int, gpuName string, memUtil float64,
	schedName string, naive bool, budget int, params core.Params,
	timeScale float64, syncRuntime, enableCPP, prefixCache bool,
	drainTimeout, watchdogTimeout time.Duration, admitKVFactor float64,
	stallStage int, stallDuration time.Duration, opts srvOptions) error {

	level, err := parseLevel(opts.logLevel)
	if err != nil {
		return err
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	m, err := model.ByName(modelPath)
	if err != nil {
		return err
	}
	g, err := gpu.ByName(gpuName)
	if err != nil {
		return err
	}
	if naive {
		schedName = "sarathi"
	}
	s, err := sched.ByName(schedName, budget, params)
	if err != nil {
		return err
	}
	var fault func(stage, seq int) time.Duration
	if stallStage >= 0 && stallDuration > 0 {
		fault = func(stage, seq int) time.Duration {
			if stage == stallStage {
				return stallDuration
			}
			return 0
		}
		logger.Warn("fault injection enabled", "stage", stallStage, "stall", stallDuration)
	}
	var rec *obs.Recorder
	if opts.traceOut != "" {
		rec = obs.NewRecorder(pp, 0)
	}
	// Request-span recording is always on: spans land in a fixed ring
	// (alloc-free record path) and export at GET /tracespans, so a cluster
	// frontend can merge this replica's view into one cross-process trace.
	reqSpans := obs.NewReqRecorder(0)
	rt, err := runtime.Start(runtime.Config{
		Model:             m,
		GPU:               g,
		Topo:              network.IntraNode(pp, network.PCIe),
		MemUtil:           memUtil,
		Scheduler:         s,
		Async:             !syncRuntime,
		TimeScale:         timeScale,
		EnableCPP:         enableCPP,
		EnablePrefixCache: prefixCache,
		AdmitKVFactor:     admitKVFactor,
		WatchdogTimeout:   watchdogTimeout,
		StageFault:        fault,
		Spans:             rec,
		ReqSpans:          reqSpans,
		Logger:            logger,
	})
	if err != nil {
		return err
	}

	srv := server.New(rt, m.Name)
	srv.EnableRequestTracing(reqSpans, obs.SideReplica)
	handler := http.Handler(srv)
	if opts.pprofOn {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	addr := fmt.Sprintf(":%d", port)
	httpSrv := &http.Server{Addr: addr, Handler: handler}

	// First signal: graceful — stop accepting connections, drain queued and
	// in-flight generation up to -drain-timeout. Second signal: abort
	// immediately.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		logger.Info("draining", "timeout", drainTimeout)
		go func() {
			<-sigCh
			logger.Warn("aborting")
			_ = rt.Close()
		}()
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := rt.Shutdown(ctx); err != nil {
			logger.Warn("drain incomplete", "err", err)
		}
		_ = httpSrv.Shutdown(ctx)
	}()

	logger.Info("serving",
		"model", m.Name, "pp", pp, "scheduler", s.Name(), "async", !syncRuntime,
		"addr", addr, "kv_capacity_tokens", rt.KVCapacityTokens())
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		return err
	}
	if rec != nil {
		if err := writeTrace(opts.traceOut, rec, rt, logger); err != nil {
			return err
		}
	}
	return nil
}

// writeTrace dumps the span recorder once the runtime has drained.
func writeTrace(path string, rec *obs.Recorder, rt *runtime.Runtime, logger *slog.Logger) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	acc := rec.AccountOver(rt.Stats().Uptime)
	logger.Info("trace written",
		"path", path, "spans", acc.Spans, "dropped", acc.Dropped,
		"bubble_rate", fmt.Sprintf("%.3f", acc.BubbleRate))
	return nil
}
