package main

import (
	"bytes"
	"context"
	"log/slog"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gllm/internal/gpu"
	"gllm/internal/model"
	"gllm/internal/network"
	"gllm/internal/obs"
	"gllm/internal/runtime"
	"gllm/internal/sched"
)

func TestParseLevel(t *testing.T) {
	for name, want := range map[string]slog.Level{
		"debug": slog.LevelDebug,
		"info":  slog.LevelInfo,
		"warn":  slog.LevelWarn,
		"error": slog.LevelError,
	} {
		got, err := parseLevel(name)
		if err != nil || got != want {
			t.Fatalf("parseLevel(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseLevel("verbose"); err == nil {
		t.Fatal("parseLevel accepted an unknown level")
	}
}

func TestWriteTrace(t *testing.T) {
	rec := obs.NewRecorder(4, 0)
	rt, err := runtime.Start(runtime.Config{
		Model:     model.Qwen25_14B,
		GPU:       gpu.L20,
		Topo:      network.IntraNode(4, network.PCIe),
		Scheduler: sched.NewDefaultThrottle(),
		Async:     true,
		TimeScale: 0,
		Spans:     rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := rt.Submit(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	for range h.Events {
	}
	<-h.Done()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "spans.json")
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	if err := writeTrace(path, rec, rt, logger); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	dec, err := obs.ReadChrome(f)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Stages != 4 || len(dec.Spans) == 0 {
		t.Fatalf("decoded stages=%d spans=%d", dec.Stages, len(dec.Spans))
	}
	if !bytes.Contains(logBuf.Bytes(), []byte("trace written")) {
		t.Fatalf("log missing trace written line: %s", logBuf.String())
	}
}
