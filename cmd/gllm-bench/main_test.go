package main

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"gllm/internal/metrics"
)

func TestParseGoodput(t *testing.T) {
	ttft, tpot, err := parseGoodput("ttft:2000 tpot:100")
	if err != nil {
		t.Fatal(err)
	}
	if ttft != 2*time.Second || tpot != 100*time.Millisecond {
		t.Fatalf("parsed %v/%v", ttft, tpot)
	}
	// Order-independent, case-insensitive keys, fractional ms.
	ttft, tpot, err = parseGoodput("TPOT:250.5 TTFT:1000")
	if err != nil {
		t.Fatal(err)
	}
	if ttft != time.Second || tpot != 250500*time.Microsecond {
		t.Fatalf("parsed %v/%v", ttft, tpot)
	}
}

func TestWriteHistCSV(t *testing.T) {
	records := []metrics.Record{
		{TTFT: 30 * time.Millisecond, TPOT: 5 * time.Millisecond,
			E2E: 400 * time.Millisecond, Queue: 2 * time.Millisecond, FinishReason: "length"},
		{TTFT: 120 * time.Millisecond, TPOT: 20 * time.Millisecond,
			E2E: 900 * time.Millisecond, Queue: 8 * time.Millisecond, FinishReason: "length"},
		// Aborted: excluded from latency histograms, counted in queue delay.
		{TTFT: 10 * time.Millisecond, Queue: time.Millisecond, FinishReason: "cancelled"},
	}
	var sb strings.Builder
	if err := writeHistCSV(&sb, records); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if lines[0] != "metric,kind,value" {
		t.Fatalf("header = %q", lines[0])
	}
	counts := map[string]string{}
	perMetric := map[string][]int{}
	for _, line := range lines[1:] {
		parts := strings.Split(line, ",")
		if len(parts) != 3 {
			t.Fatalf("bad row %q", line)
		}
		if parts[1] == "count" {
			counts[parts[0]] = parts[2]
		}
		if strings.HasPrefix(parts[1], "le:") {
			n, err := strconv.Atoi(parts[2])
			if err != nil {
				t.Fatalf("bucket value %q: %v", parts[2], err)
			}
			perMetric[parts[0]] = append(perMetric[parts[0]], n)
		}
	}
	if counts["ttft_seconds"] != "2" || counts["queue_delay_seconds"] != "3" {
		t.Fatalf("counts = %v", counts)
	}
	wantBuckets := len(metrics.DefaultLatencyBuckets) + 1
	for metric, buckets := range perMetric {
		if len(buckets) != wantBuckets {
			t.Fatalf("%s: %d buckets, want %d", metric, len(buckets), wantBuckets)
		}
		for i := 1; i < len(buckets); i++ {
			if buckets[i] < buckets[i-1] {
				t.Fatalf("%s: buckets not cumulative: %v", metric, buckets)
			}
		}
	}
	if got := perMetric["ttft_seconds"][wantBuckets-1]; got != 2 {
		t.Fatalf("ttft +Inf bucket = %d", got)
	}
}

func TestParseGoodputErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"ttft:1000",
		"tpot:100",
		"ttft:abc tpot:100",
		"latency:5",
		"ttft=1000 tpot=100",
	} {
		if _, _, err := parseGoodput(spec); err == nil {
			t.Errorf("%q parsed", spec)
		}
	}
}
