package main

import (
	"testing"
	"time"
)

func TestParseGoodput(t *testing.T) {
	ttft, tpot, err := parseGoodput("ttft:2000 tpot:100")
	if err != nil {
		t.Fatal(err)
	}
	if ttft != 2*time.Second || tpot != 100*time.Millisecond {
		t.Fatalf("parsed %v/%v", ttft, tpot)
	}
	// Order-independent, case-insensitive keys, fractional ms.
	ttft, tpot, err = parseGoodput("TPOT:250.5 TTFT:1000")
	if err != nil {
		t.Fatal(err)
	}
	if ttft != time.Second || tpot != 250500*time.Microsecond {
		t.Fatalf("parsed %v/%v", ttft, tpot)
	}
}

func TestParseGoodputErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"ttft:1000",
		"tpot:100",
		"ttft:abc tpot:100",
		"latency:5",
		"ttft=1000 tpot=100",
	} {
		if _, _, err := parseGoodput(spec); err == nil {
			t.Errorf("%q parsed", spec)
		}
	}
}
