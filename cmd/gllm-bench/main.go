// Command gllm-bench is the open-loop benchmark client (the paper's
// benchmark_serving.py): it replays a synthetic or recorded trace against
// an OpenAI-compatible server and reports TTFT/TPOT/E2EL/throughput and
// optional goodput (SLO attainment).
//
//	gllm-bench -port 8000 -dataset sharegpt -request-rate 4 -duration 30s \
//	           -goodput "ttft:2000 tpot:100"
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"gllm/internal/client"
	"gllm/internal/metrics"
	"gllm/internal/stats"
	"gllm/internal/workload"
)

func main() {
	var (
		host        = flag.String("host", "127.0.0.1", "server host")
		port        = flag.Int("port", 8000, "server port")
		modelName   = flag.String("model", "Qwen2.5-32B", "model name")
		datasetName = flag.String("dataset-name", "sharegpt", "sharegpt or azure (paper flag --dataset-name)")
		datasetPath = flag.String("dataset-path", "", "JSON trace to replay instead of synthesizing")
		azureCSV    = flag.String("splitwise-path", "", "Azure LLM inference CSV trace to replay (paper flag)")
		rate        = flag.Float64("request-rate", 4, "request rate (req/s)")
		duration    = flag.Duration("duration", 128*time.Second, "request send window (paper: 128 s)")
		numPrompts  = flag.Int("num-prompts", 0, "cap on request count (0 = rate x duration)")
		seed        = flag.Uint64("seed", 20250704, "workload seed")
		speedup     = flag.Float64("speedup", 1, "replay speedup factor")
		goodput     = flag.String("goodput", "", `SLO spec like "ttft:2000 tpot:100" (milliseconds)`)
		parallel    = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"cap on concurrent in-flight requests (0 = unlimited; arrivals stay open-loop)")
		histOut = flag.String("hist-out", "",
			"write client-side TTFT/TPOT/E2EL/queue-delay histograms as CSV (metric,kind,value rows)")
		promptMode = flag.String("prompt-mode", "synthetic",
			"prompt rendering: synthetic (prompt_len only), real (full prompt string), auto (real below 4096 tokens)")
	)
	flag.Parse()
	if err := run(*host, *port, *modelName, *datasetName, *datasetPath, *azureCSV,
		*rate, *duration, *numPrompts, *seed, *speedup, *goodput, *parallel, *histOut, *promptMode); err != nil {
		fmt.Fprintln(os.Stderr, "gllm-bench:", err)
		os.Exit(1)
	}
}

func run(host string, port int, modelName, datasetName, datasetPath, azureCSV string,
	rate float64, duration time.Duration, numPrompts int, seed uint64,
	speedup float64, goodput string, parallel int, histOut, promptMode string) error {

	var mode client.PromptMode
	switch promptMode {
	case "synthetic":
		mode = client.PromptSynthetic
	case "real":
		mode = client.PromptReal
	case "auto":
		mode = client.PromptAuto
	default:
		return fmt.Errorf("unknown -prompt-mode %q (synthetic, real, auto)", promptMode)
	}

	var items []workload.Item
	switch {
	case datasetPath != "":
		f, err := os.Open(datasetPath)
		if err != nil {
			return err
		}
		items, err = workload.LoadJSON(f)
		f.Close()
		if err != nil {
			return err
		}
	case azureCSV != "":
		f, err := os.Open(azureCSV)
		if err != nil {
			return err
		}
		var err2 error
		items, err2 = workload.LoadAzureCSV(f)
		f.Close()
		if err2 != nil {
			return err2
		}
	default:
		ds, err := workload.ByName(datasetName)
		if err != nil {
			return err
		}
		items = workload.Poisson(stats.NewRNG(seed), ds, rate, duration)
	}
	if numPrompts > 0 && len(items) > numPrompts {
		items = items[:numPrompts]
	}
	if len(items) == 0 {
		return fmt.Errorf("empty workload")
	}
	fmt.Printf("gllm-bench: %d requests, %d tokens, replaying at %gx\n",
		len(items), workload.TotalTokens(items), speedup)

	res, err := client.Run(context.Background(), client.Options{
		BaseURL:     fmt.Sprintf("http://%s:%d", host, port),
		Model:       modelName,
		Items:       items,
		SpeedUp:     speedup,
		PromptMode:  mode,
		MaxInFlight: parallel,
	})
	if err != nil {
		return err
	}
	for _, e := range res.Errors {
		fmt.Fprintln(os.Stderr, "  error:", e)
	}
	fmt.Print(res.Report.String())
	if res.Rejected > 0 {
		// Server-side admission control (HTTP 429): shed load, not failures.
		fmt.Printf("  rejected=%d (server backpressure)\n", res.Rejected)
	}

	if histOut != "" {
		f, err := os.Create(histOut)
		if err != nil {
			return err
		}
		if err := writeHistCSV(f, res.Collector.Records()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  histograms: %s\n", histOut)
	}
	if goodput != "" {
		ttft, tpot, err := parseGoodput(goodput)
		if err != nil {
			return err
		}
		att := res.Collector.SLOAttainment(ttft, tpot)
		fmt.Printf("  goodput (ttft<=%v tpot<=%v): %.1f%%\n", ttft, tpot, att*100)
	}
	if len(res.Errors) > 0 {
		return fmt.Errorf("%d requests failed", len(res.Errors))
	}
	return nil
}

// writeHistCSV dumps Prometheus-shaped latency histograms as CSV: one row
// per cumulative bucket (kind "le:<bound>", "le:+Inf"), plus "sum" and
// "count" rows per metric, using the same bucket layout the server's
// /metrics endpoint exposes.
func writeHistCSV(w io.Writer, records []metrics.Record) error {
	observe := func(sel func(metrics.Record) (time.Duration, bool)) []float64 {
		var vals []float64
		for _, r := range records {
			if d, ok := sel(r); ok {
				vals = append(vals, d.Seconds())
			}
		}
		return vals
	}
	completedOnly := func(get func(metrics.Record) time.Duration) func(metrics.Record) (time.Duration, bool) {
		return func(r metrics.Record) (time.Duration, bool) { return get(r), r.Completed() }
	}
	hists := []struct {
		name string
		vals []float64
	}{
		{"ttft_seconds", observe(completedOnly(func(r metrics.Record) time.Duration { return r.TTFT }))},
		{"tpot_seconds", observe(completedOnly(func(r metrics.Record) time.Duration { return r.TPOT }))},
		{"e2el_seconds", observe(completedOnly(func(r metrics.Record) time.Duration { return r.E2E }))},
		{"queue_delay_seconds", observe(func(r metrics.Record) (time.Duration, bool) { return r.Queue, true })},
	}
	if _, err := fmt.Fprintln(w, "metric,kind,value"); err != nil {
		return err
	}
	bounds := metrics.DefaultLatencyBuckets
	for _, h := range hists {
		counts := metrics.CumulativeCounts(h.vals, bounds)
		for i, b := range bounds {
			if _, err := fmt.Fprintf(w, "%s,le:%g,%d\n", h.name, b, counts[i]); err != nil {
				return err
			}
		}
		sum := 0.0
		for _, v := range h.vals {
			sum += v
		}
		if _, err := fmt.Fprintf(w, "%s,le:+Inf,%d\n", h.name, counts[len(bounds)]); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s,sum,%g\n", h.name, sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s,count,%d\n", h.name, len(h.vals)); err != nil {
			return err
		}
	}
	return nil
}

// parseGoodput parses the paper's "ttft:1000 tpot:250" millisecond syntax.
func parseGoodput(spec string) (ttft, tpot time.Duration, err error) {
	for _, field := range strings.Fields(spec) {
		k, v, ok := strings.Cut(field, ":")
		if !ok {
			return 0, 0, fmt.Errorf("bad goodput field %q", field)
		}
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad goodput value %q: %v", v, err)
		}
		d := time.Duration(ms * float64(time.Millisecond))
		switch strings.ToLower(k) {
		case "ttft":
			ttft = d
		case "tpot":
			tpot = d
		default:
			return 0, 0, fmt.Errorf("unknown goodput key %q", k)
		}
	}
	if ttft == 0 || tpot == 0 {
		return 0, 0, fmt.Errorf("goodput needs both ttft and tpot: %q", spec)
	}
	return ttft, tpot, nil
}
