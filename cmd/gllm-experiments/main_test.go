package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestMainErrQuickSubset(t *testing.T) {
	dir := t.TempDir()
	if err := mainErr("fig1,fig11,table1", "quick", dir, 2); err != nil {
		t.Fatal(err)
	}
	// fig1 writes its token CSV when -out is set.
	if _, err := os.Stat(filepath.Join(dir, "fig01_tokens.csv")); err != nil {
		t.Fatalf("fig1 output missing: %v", err)
	}
}

func TestMainErrTknpArtifact(t *testing.T) {
	dir := t.TempDir()
	if err := mainErr("tknp", "quick", dir, 2); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"BENCH_tknp_regimes.json", "tknp_regimes.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("tknp output missing: %v", err)
		}
	}
}

func TestTknpSelfCheck(t *testing.T) {
	if err := tknpSelfCheck(2); err != nil {
		t.Fatal(err)
	}
}

func TestMainErrErrors(t *testing.T) {
	if err := mainErr("fig99", "quick", "", 0); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := mainErr("fig1", "huge", "", 0); err == nil {
		t.Fatal("unknown scale accepted")
	}
}
