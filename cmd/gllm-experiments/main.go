// Command gllm-experiments regenerates the paper's tables and figures on
// the simulated substrate and writes the series data under -out.
//
//	gllm-experiments -run all -scale quick
//	gllm-experiments -run fig10,fig15 -scale paper -out results/
//
// Experiments: fig1, fig4, fig10, fig11, fig12, fig13, fig14, fig15,
// fig16, table1, evolution, disagg, tknp (or "all"). The tknp sweep
// writes results/BENCH_tknp_regimes.json when -out is set (regenerate at
// paper scale with: make bench-tknp).
//
// The "cluster" experiment (routing-policy comparison over live replicas,
// results/BENCH_cluster_routing.json) replays arrivals in wall-clock time,
// so it is only run when requested explicitly — never as part of "all".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"gllm/internal/experiments"
	"gllm/internal/model"
	"gllm/internal/workload"
)

func main() {
	var (
		run      = flag.String("run", "all", "comma-separated experiment ids (fig1..fig16, table1) or all")
		scale    = flag.String("scale", "quick", "quick (16 s window) or paper (128 s window)")
		out      = flag.String("out", "", "directory for CSV/series output (optional)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"worker goroutines per experiment grid (1 = sequential; results are identical at any setting)")
		selfcheck = flag.Bool("selfcheck", false,
			"run the quick TKNP regime sweep and fail unless token parallelism wins the largest batch x longest context cell")
	)
	flag.Parse()
	if *selfcheck {
		if err := tknpSelfCheck(*parallel); err != nil {
			fmt.Fprintln(os.Stderr, "gllm-experiments:", err)
			os.Exit(1)
		}
		return
	}
	if err := mainErr(*run, *scale, *out, *parallel); err != nil {
		fmt.Fprintln(os.Stderr, "gllm-experiments:", err)
		os.Exit(1)
	}
}

// tknpSelfCheck is the smoke for the token-parallel stack: the quick sweep
// must reproduce the regime the engine exists for — a nonzero decode-
// throughput win over both TP and PP in the largest batch x longest
// context cell.
func tknpSelfCheck(parallel int) error {
	sc := experiments.QuickScale()
	sc.Workers = parallel
	res, err := experiments.TknpRegimesQuick(sc)
	if err != nil {
		return fmt.Errorf("selfcheck: %w", err)
	}
	batch, ctx := res.LargestCell()
	tknp, ok := res.Row("tknp", batch, ctx)
	if !ok || tknp.DecodeTput <= 0 {
		return fmt.Errorf("selfcheck: no live tknp cell at B=%d ctx=%d", batch, ctx)
	}
	for _, rival := range []string{"tp", "pp"} {
		row, ok := res.Row(rival, batch, ctx)
		if !ok {
			return fmt.Errorf("selfcheck: missing %s cell at B=%d ctx=%d", rival, batch, ctx)
		}
		if tknp.DecodeTput <= row.DecodeTput {
			return fmt.Errorf("selfcheck: tknp decode %.1f tok/s does not beat %s %.1f tok/s at B=%d ctx=%d",
				tknp.DecodeTput, rival, row.DecodeTput, batch, ctx)
		}
	}
	fmt.Printf("selfcheck ok: B=%d ctx=%d tknp %.1f tok/s beats tp/pp\n", batch, ctx, tknp.DecodeTput)
	return nil
}

func mainErr(run, scaleName, out string, parallel int) error {
	var sc experiments.Scale
	switch scaleName {
	case "quick":
		sc = experiments.QuickScale()
	case "paper":
		sc = experiments.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q", scaleName)
	}
	sc.Workers = parallel
	if out != "" {
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
	}

	want := map[string]bool{}
	for _, id := range strings.Split(run, ",") {
		want[strings.TrimSpace(id)] = true
	}
	all := want["all"]
	ran := 0

	maybe := func(id string, fn func() error) error {
		if !all && !want[id] {
			return nil
		}
		ran++
		start := time.Now()
		fmt.Printf("=== %s ===\n", id)
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Printf("(%s took %.1fs)\n\n", id, time.Since(start).Seconds())
		return nil
	}

	writeCSV := func(name, content string) error {
		if out == "" {
			return nil
		}
		return os.WriteFile(filepath.Join(out, name), []byte(content), 0o644)
	}

	steps := []struct {
		id string
		fn func() error
	}{
		{"fig1", func() error {
			res, err := experiments.Fig1TokenVolatility(sc, 4)
			if err != nil {
				return err
			}
			fmt.Print(res.String())
			var csv strings.Builder
			csv.WriteString("iter,sarathi_total,gllm_total\n")
			n := len(res.Sarathi.Total)
			if len(res.GLLM.Total) > n {
				n = len(res.GLLM.Total)
			}
			for i := 0; i < n; i++ {
				s, g := "", ""
				if i < len(res.Sarathi.Total) {
					s = fmt.Sprintf("%g", res.Sarathi.Total[i])
				}
				if i < len(res.GLLM.Total) {
					g = fmt.Sprintf("%g", res.GLLM.Total[i])
				}
				fmt.Fprintf(&csv, "%d,%s,%s\n", i, s, g)
			}
			return writeCSV("fig01_tokens.csv", csv.String())
		}},
		{"fig4", func() error {
			res, err := experiments.Fig4Utilization(sc, 4, experiments.SysVLLM)
			if err != nil {
				return err
			}
			fmt.Print(res.String())
			return writeCSV("fig04_tokens.csv", res.Tokens.CSV())
		}},
		{"fig10", func() error {
			for _, m := range []model.Config{model.Qwen25_14B, model.Qwen25_32B} {
				for _, ds := range []workload.Dataset{workload.ShareGPT, workload.Azure} {
					rates := experiments.RatesShareGPT
					if ds.Name == "azure" {
						rates = experiments.RatesAzure
					}
					sweeps, err := experiments.Fig10(sc, m, ds, rates)
					if err != nil {
						return err
					}
					fmt.Printf("Figure 10 — %s / %s (intra-node 4xL20)\n", m.Name, ds.Name)
					for _, sw := range sweeps {
						fmt.Print(sw.String())
					}
					if err := writeCSV(fmt.Sprintf("fig10_%s_%s.csv", m.Name, ds.Name),
						experiments.SweepsCSV(sweeps)); err != nil {
						return err
					}
				}
			}
			return nil
		}},
		{"fig11", func() error {
			res, err := experiments.Fig11Distributions(sc.Seed, 50000)
			if err != nil {
				return err
			}
			fmt.Print(res.String())
			return writeCSV("fig11_input_hist.csv",
				"sharegpt:\n"+res.ShareGPT.InputHist.Render(40)+"azure:\n"+res.Azure.InputHist.Render(40))
		}},
		{"fig12", func() error {
			for _, m := range []model.Config{model.Qwen25_14B, model.Qwen25_32B, model.Llama31_100B} {
				rates := experiments.RatesAzure // cross-node axes are lower
				if m.Name == model.Llama31_100B.Name {
					rates = []float64{0.25, 0.5, 1}
				}
				sweeps, err := experiments.Fig12(sc, m, workload.ShareGPT, rates)
				if err != nil {
					return err
				}
				fmt.Printf("Figure 12 — %s / sharegpt (4 nodes, simulated net)\n", m.Name)
				for _, sw := range sweeps {
					fmt.Print(sw.String())
				}
				if err := writeCSV(fmt.Sprintf("fig12_%s.csv", m.Name),
					experiments.SweepsCSV(sweeps)); err != nil {
					return err
				}
			}
			return nil
		}},
		{"fig13", func() error {
			intra, err := experiments.Fig13Intra(sc)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderScalability(intra, "Figure 13a — intra-node scaling (14B, L20)"))
			cross, err := experiments.Fig13Cross(sc)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderScalability(cross, "Figure 13b — cross-node scaling (14B, A100/node)"))
			return nil
		}},
		{"fig14", func() error {
			for _, ds := range []workload.Dataset{workload.ShareGPT, workload.Azure} {
				sweeps, err := experiments.Fig14(sc, ds, []float64{0.25, 0.5, 0.75, 1})
				if err != nil {
					return err
				}
				fmt.Printf("Figure 14 — SLO attainment, Llama3.1-100B cross-node A800, %s\n", ds.Name)
				for _, sw := range sweeps {
					fmt.Print(sw.String())
				}
				if err := writeCSV(fmt.Sprintf("fig14_%s.csv", ds.Name),
					experiments.SweepsCSV(sweeps)); err != nil {
					return err
				}
			}
			return nil
		}},
		{"fig15", func() error {
			res, err := experiments.Fig15Ablation(sc, 4, workload.ShareGPT)
			if err != nil {
				return err
			}
			fmt.Print(res.String())
			return nil
		}},
		{"fig16", func() error {
			res, err := experiments.Fig16Sensitivity(sc, 4, workload.ShareGPT)
			if err != nil {
				return err
			}
			fmt.Print(res.String())
			return nil
		}},
		{"evolution", func() error {
			res, err := experiments.SchedulingEvolution(sc, 4, workload.ShareGPT)
			if err != nil {
				return err
			}
			fmt.Print(res.String())
			return nil
		}},
		{"disagg", func() error {
			res, err := experiments.DisaggRatio(sc, 4)
			if err != nil {
				return err
			}
			fmt.Print(res.String())
			return nil
		}},
		{"tknp", func() error {
			run := experiments.TknpRegimesQuick
			if scaleName == "paper" {
				run = experiments.TknpRegimesPaper
			}
			res, err := run(sc)
			if err != nil {
				return err
			}
			fmt.Print(res.String())
			if out != "" {
				blob, err := tknpArtifact(res, scaleName)
				if err != nil {
					return err
				}
				if err := os.WriteFile(filepath.Join(out, "BENCH_tknp_regimes.json"), blob, 0o644); err != nil {
					return err
				}
			}
			return writeCSV("tknp_regimes.csv", res.CSV())
		}},
		{"table1", func() error {
			res, err := experiments.Table1Equivalence(sc.Seed, 32, ".")
			if err != nil {
				return err
			}
			fmt.Print(res.String())
			return nil
		}},
	}
	for _, s := range steps {
		if err := maybe(s.id, s.fn); err != nil {
			return err
		}
	}
	// The cluster routing comparison replays a compressed day against live
	// replica runtimes in wall-clock time; explicit opt-in only.
	if want["cluster"] {
		ran++
		start := time.Now()
		fmt.Println("=== cluster ===")
		spec := experiments.QuickClusterSpec()
		if scaleName == "paper" {
			spec = experiments.DayClusterSpec()
		}
		res, err := experiments.ClusterRouting(spec)
		if err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
		fmt.Print(res.String())
		if out != "" {
			blob, err := clusterArtifact(res)
			if err != nil {
				return err
			}
			if err := os.WriteFile(filepath.Join(out, "BENCH_cluster_routing.json"), blob, 0o644); err != nil {
				return err
			}
		}
		fmt.Printf("(cluster took %.1fs)\n\n", time.Since(start).Seconds())
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched %q", run)
	}
	return nil
}

// tknpArtifact wraps the TKNP regime sweep in the repo's BENCH_*.json
// shape: what ran, where, when, and how to regenerate it.
func tknpArtifact(res *experiments.TknpResult, scaleName string) ([]byte, error) {
	return json.MarshalIndent(struct {
		Benchmark   string                  `json:"benchmark"`
		Description string                  `json:"description"`
		Scale       string                  `json:"scale"`
		Recorded    string                  `json:"recorded"`
		Host        map[string]any          `json:"host"`
		Result      *experiments.TknpResult `json:"result"`
	}{
		Benchmark: "TknpRegimes",
		Description: "Token-parallel regime sweep: TP-16, PP-16, disaggregated 8P8D and " +
			"TKNP (root TP 8) serve Qwen2.5-14B closed batches over a batch x context grid " +
			"on one 16 x A100-40G NVLink node. decode_tok_s is batch/TPOT — the steady-state " +
			"decode rate. TKNP must beat TP and PP in the largest batch x longest context " +
			"cell (regression-tested); TP over-shards the model's 8 KV heads past degree 8 " +
			"and pays 2(n-1) ring-step latencies per layer, PP streams all weights serially " +
			"per output token. Regenerate with: make bench-tknp",
		Scale:    scaleName,
		Recorded: time.Now().Format("2006-01-02"),
		Host: map[string]any{
			"cores":      runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"go":         runtime.Version(),
		},
		Result: res,
	}, "", "  ")
}

// clusterArtifact wraps the routing comparison in the repo's BENCH_*.json
// shape: what ran, where, when, and how to regenerate it.
func clusterArtifact(res *experiments.ClusterResult) ([]byte, error) {
	return json.MarshalIndent(struct {
		Benchmark   string                     `json:"benchmark"`
		Description string                     `json:"description"`
		Recorded    string                     `json:"recorded"`
		Host        map[string]any             `json:"host"`
		Result      *experiments.ClusterResult `json:"result"`
	}{
		Benchmark: "ClusterRouting",
		Description: "Routing-policy comparison (random, round-robin, least-kv, prefix) " +
			"over a cluster of live in-process replica runtimes serving one seeded synthetic day " +
			"of diurnal multi-turn chat traffic, time-compressed so emulated GPU seconds and " +
			"arrival pacing shrink uniformly. TTFT/E2E are client-side (submit to first/last " +
			"token, retry backoff included); kv_hit_rate is prefix-cache tokens over all prompt " +
			"tokens; the cross-replica audit (stream/token conservation, KV-leak freedom) must " +
			"pass for every policy. Regenerate with: make bench-cluster",
		Recorded: time.Now().Format("2006-01-02"),
		Host: map[string]any{
			"cores":      runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"go":         runtime.Version(),
		},
		Result: res,
	}, "", "  ")
}
