// Command gllm-tracecheck validates a Chrome trace-event JSON file produced
// by gllm-sim/gllm-server -trace-out and prints its bubble accounting. It
// exits nonzero if the file is not a well-formed span trace, which makes it
// usable as a round-trip smoke check in CI:
//
//	gllm-sim -rate 2 -window 5s -trace-out spans.json
//	gllm-tracecheck -stages 4 spans.json
//
// With -requests it instead validates a merged request trace produced by
// gllm-cluster -trace-out / -selfcheck-trace: per-request lanes holding
// router- and replica-side lifecycle spans, checked for lane integrity,
// series overlap, and router-root enclosure (up to -skew of cross-process
// clock drift):
//
//	gllm-cluster -selfcheck-trace -server-bin gllm-server -trace-out req.json
//	gllm-tracecheck -requests req.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"gllm/internal/obs"
)

func main() {
	var (
		stages   = flag.Int("stages", 0, "expected pipeline stage count (0 = accept any)")
		requests = flag.Bool("requests", false, "validate a merged request trace (gllm-cluster -trace-out) instead of a stage trace")
		skew     = flag.Duration("skew", 50*time.Millisecond, "cross-process clock tolerance for -requests validation")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gllm-tracecheck [-stages N | -requests [-skew D]] trace.json")
		os.Exit(2)
	}
	run := runStages
	if *requests {
		run = func(path string, _ int, out io.Writer) error { return runRequests(path, *skew, out) }
	}
	if err := run(flag.Arg(0), *stages, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gllm-tracecheck:", err)
		os.Exit(1)
	}
}

func runStages(path string, stages int, out io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	dec, err := obs.ReadChrome(f)
	if err != nil {
		return err
	}
	if stages > 0 && dec.Stages != stages {
		return fmt.Errorf("%s: decoded %d stages, expected %d", path, dec.Stages, stages)
	}
	// Account over the span extent: the trace file carries no makespan, so
	// the window is the earliest start to the latest end.
	acc := dec.Account(0)
	fmt.Fprintf(out, "%s: %d spans across %d stages\n", path, len(dec.Spans), dec.Stages)
	fmt.Fprint(out, acc.String())
	return nil
}

func runRequests(path string, skew time.Duration, out io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	dec, err := obs.ReadChromeRequests(f)
	if err != nil {
		return err
	}
	if err := dec.Validate(skew); err != nil {
		return err
	}
	fmt.Fprintf(out, "%s: ", path)
	fmt.Fprint(out, dec.Summary())
	return nil
}
