// Command gllm-tracecheck validates a Chrome trace-event JSON file produced
// by gllm-sim/gllm-server -trace-out and prints its bubble accounting. It
// exits nonzero if the file is not a well-formed span trace, which makes it
// usable as a round-trip smoke check in CI:
//
//	gllm-sim -rate 2 -window 5s -trace-out spans.json
//	gllm-tracecheck -stages 4 spans.json
package main

import (
	"flag"
	"fmt"
	"os"

	"gllm/internal/obs"
)

func main() {
	var (
		stages = flag.Int("stages", 0, "expected pipeline stage count (0 = accept any)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gllm-tracecheck [-stages N] trace.json")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *stages, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gllm-tracecheck:", err)
		os.Exit(1)
	}
}

func run(path string, stages int, out *os.File) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	dec, err := obs.ReadChrome(f)
	if err != nil {
		return err
	}
	if stages > 0 && dec.Stages != stages {
		return fmt.Errorf("%s: decoded %d stages, expected %d", path, dec.Stages, stages)
	}
	// Account over the span extent: the trace file carries no makespan, so
	// the window is the earliest start to the latest end.
	acc := dec.Account(0)
	fmt.Fprintf(out, "%s: %d spans across %d stages\n", path, len(dec.Spans), dec.Stages)
	fmt.Fprint(out, acc.String())
	return nil
}
