package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"gllm/internal/obs"
)

func writeSample(t *testing.T, stages int) string {
	t.Helper()
	rec := obs.NewRecorder(stages, 0)
	for i := 0; i < stages; i++ {
		start := time.Duration(i) * time.Millisecond
		rec.Record(i, obs.KindExec, i, 16, start, start+time.Millisecond)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteChrome(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunValidTrace(t *testing.T) {
	path := writeSample(t, 4)
	if err := runStages(path, 4, os.Stdout); err != nil {
		t.Fatal(err)
	}
	// Stage count 0 accepts any trace.
	if err := runStages(path, 0, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunStageMismatch(t *testing.T) {
	path := writeSample(t, 2)
	if err := runStages(path, 4, os.Stdout); err == nil {
		t.Fatal("stage mismatch accepted")
	}
}

func TestRunRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"not":"a trace"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runStages(path, 0, os.Stdout); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := runStages(filepath.Join(t.TempDir(), "missing.json"), 0, os.Stdout); err == nil {
		t.Fatal("missing file accepted")
	}
}

// writeRequestSample produces a minimal valid merged request trace: one
// router root enclosing an admit span plus a replica-side queue span.
func writeRequestSample(t *testing.T) string {
	t.Helper()
	rr := obs.NewReqRecorder(0)
	id := obs.TraceID(0xbeef)
	base := time.Now()
	rr.Record(id, obs.SpanRequest, obs.SideRouter, "length", 0, base, base.Add(10*time.Millisecond))
	rr.Record(id, obs.SpanAdmit, obs.SideRouter, "", 0, base, base.Add(time.Millisecond))
	rr.Record(id, obs.SpanQueue, obs.SideReplica, "", 0, base.Add(time.Millisecond), base.Add(2*time.Millisecond))
	path := filepath.Join(t.TempDir(), "req.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteChromeRequests(f, rr.Export()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunRequestsValidTrace(t *testing.T) {
	path := writeRequestSample(t)
	if err := runRequests(path, 50*time.Millisecond, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunRequestsRejectsStageTrace(t *testing.T) {
	// A stage trace is not a request trace; -requests must reject it.
	path := writeSample(t, 2)
	if err := runRequests(path, 0, os.Stdout); err == nil {
		t.Fatal("stage trace accepted as a request trace")
	}
}
