package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"gllm/internal/obs"
)

func writeSample(t *testing.T, stages int) string {
	t.Helper()
	rec := obs.NewRecorder(stages, 0)
	for i := 0; i < stages; i++ {
		start := time.Duration(i) * time.Millisecond
		rec.Record(i, obs.KindExec, i, 16, start, start+time.Millisecond)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteChrome(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunValidTrace(t *testing.T) {
	path := writeSample(t, 4)
	if err := run(path, 4, os.Stdout); err != nil {
		t.Fatal(err)
	}
	// Stage count 0 accepts any trace.
	if err := run(path, 0, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunStageMismatch(t *testing.T) {
	path := writeSample(t, 2)
	if err := run(path, 4, os.Stdout); err == nil {
		t.Fatal("stage mismatch accepted")
	}
}

func TestRunRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"not":"a trace"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, 0, os.Stdout); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "missing.json"), 0, os.Stdout); err == nil {
		t.Fatal("missing file accepted")
	}
}
