package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunReportQuick(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.html")
	if err := run(out, "quick", true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	html := string(data)
	for _, want := range []string{"<!DOCTYPE html>", "Figure 1", "Figure 10", "Figure 14", "Table 1", "<svg"} {
		if !strings.Contains(html, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestRunReportBadScale(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "r.html"), "huge", true); err == nil {
		t.Fatal("bad scale accepted")
	}
}
