// Command gllm-report regenerates the paper's headline experiments and
// renders them into a single self-contained HTML report with SVG charts —
// the one-page visual summary of the reproduction.
//
//	gllm-report -scale quick -o report.html
//	gllm-report -scale paper -o report.html   # the full 128 s windows
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gllm/internal/experiments"
	"gllm/internal/model"
	"gllm/internal/report"
	"gllm/internal/workload"
)

func main() {
	var (
		out       = flag.String("o", "report.html", "output HTML path")
		scaleName = flag.String("scale", "quick", "quick or paper")
		skipScale = flag.Bool("skip-scalability", false, "skip the slow Figure 13 sweeps")
	)
	flag.Parse()
	if err := run(*out, *scaleName, *skipScale); err != nil {
		fmt.Fprintln(os.Stderr, "gllm-report:", err)
		os.Exit(1)
	}
}

func run(out, scaleName string, skipScale bool) error {
	var sc experiments.Scale
	switch scaleName {
	case "quick":
		sc = experiments.QuickScale()
	case "paper":
		sc = experiments.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q", scaleName)
	}
	start := time.Now()

	rep := report.Report{
		Title: "gLLM reproduction report",
		Subtitle: fmt.Sprintf("Token Throttling for balanced pipeline-parallel LLM serving (SC '25) — "+
			"simulated substrate, %s scale, seed %d", scaleName, sc.Seed),
	}

	// Figure 1.
	fig1, err := experiments.Fig1TokenVolatility(sc, 4)
	if err != nil {
		return err
	}
	sec, err := report.TokenSeriesSection(fig1)
	if err != nil {
		return err
	}
	rep.Sections = append(rep.Sections, sec)

	// Figure 10 (14B ShareGPT panel).
	sweeps, err := experiments.Fig10(sc, model.Qwen25_14B, workload.ShareGPT, experiments.RatesShareGPT)
	if err != nil {
		return err
	}
	sec, err = report.SweepSection("Figure 10 — intra-node (Qwen2.5-14B, ShareGPT, 4 x L20)",
		"gLLM holds latency flat to higher rates; TP (SGLang) wins only at low rates.", sweeps, false)
	if err != nil {
		return err
	}
	rep.Sections = append(rep.Sections, sec)

	// Figure 12 (14B cross-node panel).
	sweeps, err = experiments.Fig12(sc, model.Qwen25_14B, workload.ShareGPT, experiments.RatesAzure)
	if err != nil {
		return err
	}
	sec, err = report.SweepSection("Figure 12 — cross-node (Qwen2.5-14B, 4 nodes, 73.28 Gbps)",
		"Over the slow network TP pays per-layer all-reduces; pipeline parallelism barely notices.", sweeps, false)
	if err != nil {
		return err
	}
	rep.Sections = append(rep.Sections, sec)

	// Figure 13.
	if !skipScale {
		points, err := experiments.Fig13Intra(sc)
		if err != nil {
			return err
		}
		sec, err = report.ScalabilitySection("Figure 13a — intra-node max-throughput scaling (14B, L20)", points)
		if err != nil {
			return err
		}
		rep.Sections = append(rep.Sections, sec)
		points, err = experiments.Fig13Cross(sc)
		if err != nil {
			return err
		}
		sec, err = report.ScalabilitySection("Figure 13b — cross-node scaling (14B, 1 x A100 per node)", points)
		if err != nil {
			return err
		}
		rep.Sections = append(rep.Sections, sec)
	}

	// Figure 14 (Azure SLO panel).
	sweeps, err = experiments.Fig14(sc, workload.Azure, []float64{0.25, 0.5, 0.75, 1})
	if err != nil {
		return err
	}
	sec, err = report.SweepSection("Figure 14 — SLO attainment (Llama3.1-100B, 4 x A800 cross-node, Azure)",
		"Goodput under TTFT <= 4 s and TPOT <= 200 ms.", sweeps, true)
	if err != nil {
		return err
	}
	rep.Sections = append(rep.Sections, sec)

	// Figures 15/16 and Table 1 as preformatted text.
	fig15, err := experiments.Fig15Ablation(sc, 4, workload.ShareGPT)
	if err != nil {
		return err
	}
	rep.Sections = append(rep.Sections, report.TextSection(
		"Figure 15 — ablation", "Normalized to full gLLM (lower is better except throughput).", fig15.String()))

	fig16, err := experiments.Fig16Sensitivity(sc, 4, workload.ShareGPT)
	if err != nil {
		return err
	}
	rep.Sections = append(rep.Sections, report.TextSection(
		"Figure 16 — sensitivity", "Each knob swept around the paper defaults.", fig16.String()))

	t1, err := experiments.Table1Equivalence(sc.Seed, 32, ".")
	if err != nil {
		return err
	}
	rep.Sections = append(rep.Sections, report.TextSection(
		"Table 1 — size and output quality", "", t1.String()))

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rep.Render(f); err != nil {
		return err
	}
	fmt.Printf("gllm-report: wrote %s (%d sections) in %.1fs\n", out, len(rep.Sections), time.Since(start).Seconds())
	return nil
}
