package main

import (
	"io"
	"log/slog"
	"testing"
	"time"

	"gllm/internal/cluster"
)

// The selfcheck is the binary's own end-to-end proof (make cluster-smoke);
// running it under go test keeps it from rotting between smoke runs.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("boots three replica runtimes and replays a trace over HTTP")
	}
	o := clusterOptions{
		replicas: 3, policy: "prefix", modelPath: "Qwen2.5-14B",
		pp: 2, gpuName: "L20-48GB", memUtil: 0.9,
		schedName: "gllm", budget: 2048, prefixCache: true,
		retry: cluster.RetryPolicy{
			MaxAttempts: 4, BaseDelay: 5 * time.Millisecond,
			MaxDelay: time.Second, Budget: 10 * time.Second, HonorRetryAfter: true,
		},
		drainTimeout: 30 * time.Second, seed: 20250704,
	}
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	if err := selfCheck(o, logger); err != nil {
		t.Fatal(err)
	}
}

func TestParseLevel(t *testing.T) {
	for _, s := range []string{"debug", "info", "warn", "error"} {
		if _, err := parseLevel(s); err != nil {
			t.Errorf("parseLevel(%q): %v", s, err)
		}
	}
	if _, err := parseLevel("loud"); err == nil {
		t.Error("parseLevel must reject unknown levels")
	}
}

func TestBuildClusterRejectsBadPolicy(t *testing.T) {
	o := clusterOptions{replicas: 1, policy: "nope", modelPath: "Qwen2.5-14B",
		pp: 2, gpuName: "L20-48GB", memUtil: 0.9, schedName: "gllm", budget: 2048}
	if _, err := buildCluster(o, slog.New(slog.NewTextHandler(io.Discard, nil))); err == nil {
		t.Fatal("unknown policy must fail")
	}
}
