// Command gllm-cluster serves the OpenAI-compatible frontend from a
// cluster of in-process replica runtimes behind a routing policy — the
// load-balancer-over-replicas layer above gllm-server:
//
//	gllm-cluster -port 8000 -replicas 3 -policy prefix
//
// Every replica is a full gLLM runtime (own driver, pipeline, KV cache,
// admission control); the router spreads completions across them, retries
// backpressure (429) rejections with capped jittered backoff, and keeps
// serving through replica drains:
//
//	curl -s localhost:8000/cluster/stats | jq .
//	curl -s -X POST 'localhost:8000/cluster/drain?id=r1'
//	curl -s -X POST 'localhost:8000/cluster/replace?id=r2'
//
// -selfcheck boots a 3-replica cluster on a loopback port, runs concurrent
// multi-turn prefix-group traffic through the full HTTP/SSE path, drains a
// replica mid-flight through the admin endpoint, and exits 0 only if every
// stream delivered exactly its requested tokens and no replica leaked KV.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"gllm/internal/client"
	"gllm/internal/cluster"
	"gllm/internal/core"
	"gllm/internal/gpu"
	"gllm/internal/metrics"
	"gllm/internal/model"
	"gllm/internal/network"
	"gllm/internal/obs"
	"gllm/internal/runtime"
	"gllm/internal/sched"
	"gllm/internal/server"
	"gllm/internal/stats"
	"gllm/internal/workload"
)

func main() {
	var (
		port      = flag.Int("port", 8000, "listen port")
		replicas  = flag.Int("replicas", 3, "replica runtimes to start")
		policy    = flag.String("policy", "prefix", "routing policy: random, round-robin, least-kv, prefix")
		modelPath = flag.String("model-path", "Qwen2.5-14B", "model name (paper flag --model-path)")
		pp        = flag.Int("pp", 2, "pipeline parallel degree per replica")
		gpuName   = flag.String("gpu", "L20-48GB", "GPU type")
		memUtil   = flag.Float64("gpu-memory-util", 0.9, "GPU memory utilization")
		schedName = flag.String("sched", "gllm", "scheduler: gllm, sarathi, gllm-no-wt, gllm-no-ut, gllm-ck")
		budget    = flag.Int("token-budget", 2048, "Sarathi token budget")
		timeScale = flag.Float64("time-scale", 0, "emulated GPU time scale (0 = no sleeping)")
		prefix    = flag.Bool("enable-prefix-cache", true, "reuse KV across requests sharing a prefix group")

		retryAttempts = flag.Int("retry-attempts", 4, "submission attempts before giving up (429 → retry)")
		retryBase     = flag.Duration("retry-base", 5*time.Millisecond, "backoff base delay")
		retryMax      = flag.Duration("retry-max", time.Second, "backoff cap (Retry-After hints may exceed it)")
		retryBudget   = flag.Duration("retry-budget", 10*time.Second, "total time budget across attempts")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second,
			"graceful window for /cluster/drain and shutdown before in-flight work is aborted")
		seed      = flag.Uint64("seed", 20250704, "router jitter seed")
		logLevel  = flag.String("log-level", "info", "structured log level: debug, info, warn, error")
		selfcheck = flag.Bool("selfcheck", false,
			"boot 3 replicas on a loopback port, serve prefix-group traffic, drain one mid-flight, verify zero dropped tokens, exit")

		probeInterval = flag.Duration("probe-interval", 250*time.Millisecond,
			"health-probe period for remote replicas")
		probeFailures = flag.Int("probe-failures", 3,
			"consecutive probe failures before a remote replica reads unreachable")
		connectTimeout = flag.Duration("connect-timeout", 2*time.Second,
			"per-attempt connect timeout for remote submissions and probes")
		selfcheckRemote = flag.Bool("selfcheck-remote", false,
			"spawn 2 gllm-server processes (-server-bin) plus 1 in-process replica behind one router, drain one remote mid-flight, kill the other mid-stream, verify recovery, exit")
		serverBin = flag.String("server-bin", "",
			"path to a gllm-server binary for -selfcheck-remote / -selfcheck-trace")
		traceOut = flag.String("trace-out", "",
			"write the merged cross-process request trace (Chrome trace JSON) here on exit")
		selfcheckTrace = flag.Bool("selfcheck-trace", false,
			"spawn 2 gllm-server processes (-server-bin), route one traced request through the full HTTP path, write the merged trace to -trace-out, verify the federated /metrics, exit")
	)
	var remotes []string
	flag.Func("replica",
		"remote replica endpoint (repeatable), e.g. -replica http://10.0.0.7:8000; mixes with -replicas in-process runtimes",
		func(v string) error {
			remotes = append(remotes, v)
			return nil
		})
	flag.Parse()
	if err := run(clusterOptions{
		port: *port, replicas: *replicas, policy: *policy,
		modelPath: *modelPath, pp: *pp, gpuName: *gpuName, memUtil: *memUtil,
		schedName: *schedName, budget: *budget, timeScale: *timeScale, prefixCache: *prefix,
		retry: cluster.RetryPolicy{
			MaxAttempts: *retryAttempts, BaseDelay: *retryBase,
			MaxDelay: *retryMax, Budget: *retryBudget, HonorRetryAfter: true,
		},
		drainTimeout: *drainTimeout, seed: *seed, logLevel: *logLevel, selfcheck: *selfcheck,
		remotes: remotes, probeInterval: *probeInterval, probeFailures: *probeFailures,
		connectTimeout: *connectTimeout, selfcheckRemote: *selfcheckRemote, serverBin: *serverBin,
		traceOut: *traceOut, selfcheckTrace: *selfcheckTrace,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "gllm-cluster:", err)
		os.Exit(1)
	}
}

type clusterOptions struct {
	port         int
	replicas     int
	policy       string
	modelPath    string
	pp           int
	gpuName      string
	memUtil      float64
	schedName    string
	budget       int
	timeScale    float64
	prefixCache  bool
	retry        cluster.RetryPolicy
	drainTimeout time.Duration
	seed         uint64
	logLevel     string
	selfcheck    bool

	remotes         []string // remote replica base URLs (-replica, repeatable)
	probeInterval   time.Duration
	probeFailures   int
	connectTimeout  time.Duration
	selfcheckRemote bool
	serverBin       string
	traceOut        string
	selfcheckTrace  bool
}

// remoteConfig renders the shared remote-transport settings for one
// endpoint.
func (o clusterOptions) remoteConfig(baseURL string, logger *slog.Logger) cluster.RemoteConfig {
	return cluster.RemoteConfig{
		BaseURL:          baseURL,
		Model:            o.modelPath,
		ConnectTimeout:   o.connectTimeout,
		ProbeInterval:    o.probeInterval,
		FailureThreshold: o.probeFailures,
		Logger:           logger,
	}
}

func parseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", s)
}

// replicaFactory builds one fresh replica runtime per call; each gets its
// own scheduler instance (schedulers hold mutable state). In-process
// replicas share the router's span recorder — same process, same clock,
// so their replica-side spans merge with the router's for free.
func replicaFactory(o clusterOptions, spans *obs.ReqRecorder) (func() (*runtime.Runtime, error), error) {
	m, err := model.ByName(o.modelPath)
	if err != nil {
		return nil, err
	}
	g, err := gpu.ByName(o.gpuName)
	if err != nil {
		return nil, err
	}
	return func() (*runtime.Runtime, error) {
		s, err := sched.ByName(o.schedName, o.budget, core.DefaultParams())
		if err != nil {
			return nil, err
		}
		return runtime.Start(runtime.Config{
			Model:             m,
			GPU:               g,
			Topo:              network.IntraNode(o.pp, network.PCIe),
			MemUtil:           o.memUtil,
			Scheduler:         s,
			Async:             true,
			TimeScale:         o.timeScale,
			EnablePrefixCache: o.prefixCache,
			ReqSpans:          spans,
		})
	}, nil
}

// admin bundles the router with the pieces the admin endpoints need.
type admin struct {
	router       *cluster.Router
	fresh        func() (*runtime.Runtime, error)
	nextID       atomic.Int64
	drainTimeout time.Duration
	logger       *slog.Logger
	reqSpans     *obs.ReqRecorder  // router-side + in-process replica spans
	timeline     *cluster.Timeline // /cluster/timeline pressure sampler
}

func buildCluster(o clusterOptions, logger *slog.Logger) (*admin, error) {
	pol, err := cluster.ByName(o.policy, o.seed)
	if err != nil {
		return nil, err
	}
	reqSpans := obs.NewReqRecorder(0)
	fresh, err := replicaFactory(o, reqSpans)
	if err != nil {
		return nil, err
	}
	a := &admin{
		router: cluster.New(cluster.Config{
			Policy: pol, Retry: o.retry, Seed: o.seed, Logger: logger,
			ReqSpans: reqSpans,
		}),
		fresh:        fresh,
		drainTimeout: o.drainTimeout,
		logger:       logger,
		reqSpans:     reqSpans,
	}
	for i := 0; i < o.replicas; i++ {
		rt, err := fresh()
		if err != nil {
			a.router.Close()
			return nil, err
		}
		if _, err := a.router.Add(fmt.Sprintf("r%d", a.nextID.Add(1)-1), rt); err != nil {
			rt.Close()
			a.router.Close()
			return nil, err
		}
	}
	for i, baseURL := range o.remotes {
		cfg := o.remoteConfig(baseURL, logger)
		cfg.ReqSpans = reqSpans
		rem, err := cluster.NewRemote(cfg)
		if err != nil {
			a.router.Close()
			return nil, err
		}
		if _, err := a.router.Add(fmt.Sprintf("remote%d", i), rem); err != nil {
			rem.Close()
			a.router.Close()
			return nil, err
		}
	}
	a.timeline = cluster.NewTimeline(a.router, time.Second, 0)
	return a, nil
}

// close tears down the sampler and every replica.
func (a *admin) close() {
	a.timeline.Stop()
	a.router.Close()
}

// clusterBackend adapts the router to the HTTP frontend's Backend, so the
// cluster reuses the entire single-node serving surface (SSE streaming,
// /healthz, /stats, /metrics) unchanged.
type clusterBackend struct{ r *cluster.Router }

func (b clusterBackend) Submit(ctx context.Context, req server.SubmitRequest) (*runtime.Handle, error) {
	h, _, err := b.r.Submit(ctx, cluster.Request{
		PromptLen:       req.PromptLen,
		MaxTokens:       req.MaxTokens,
		PrefixGroup:     req.PrefixGroup,
		SharedPrefixLen: req.SharedPrefixLen,
		Trace:           req.Trace,
	})
	return h, err
}
func (b clusterBackend) Stats() runtime.Snapshot { return b.r.Stats() }
func (b clusterBackend) Scrape() metrics.Scrape  { return b.r.Scrape() }

// replicaStatus is one row of /cluster/stats.
type replicaStatus struct {
	ID       string  `json:"id"`
	Health   string  `json:"health"`
	Draining bool    `json:"draining"`
	Routed   int64   `json:"routed"`
	Rejects  int64   `json:"rejects"`
	KVFree   float64 `json:"kv_free"`
	Resident int     `json:"resident"`
}

func replicaRows(reps []*cluster.Replica) []replicaStatus {
	rows := make([]replicaStatus, 0, len(reps))
	for _, rep := range reps {
		p := rep.Pressure()
		rows = append(rows, replicaStatus{
			ID: rep.ID, Health: p.Health, Draining: rep.Draining(),
			Routed: rep.Routed(), Rejects: rep.Rejects(),
			KVFree: p.KVFree, Resident: p.Resident,
		})
	}
	return rows
}

func (a *admin) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"policy":      a.router.Policy().Name(),
		"replicas":    replicaRows(a.router.Replicas()),
		"retired":     replicaRows(a.router.Retired()),
		"retries_429": a.router.Retries429(),
		"gave_up":     a.router.GaveUp(),
		"router":      a.router.RouterStats(),
	})
}

// handleMetrics serves the federated exposition: every replica's series
// labeled {replica="id"} plus the gllm_router_* series. Registered on
// the exact path so it shadows the frontend's single-node /metrics.
func (a *admin) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	metrics.WriteFamilies(w, a.router.Federate(r.Context()))
}

// handleTimeline serves the pressure/health ring, oldest sample first.
func (a *admin) handleTimeline(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"total":   a.timeline.Total(),
		"samples": a.timeline.Samples(),
	})
}

// handleTrace serves the merged Chrome trace (router + every replica's
// spans, clock-aligned) for ad-hoc inspection without -trace-out.
func (a *admin) handleTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	exports := append([]obs.ReqExport{a.reqSpans.Export()}, a.router.TraceExports(r.Context())...)
	if err := obs.WriteChromeRequests(w, exports...); err != nil {
		a.logger.Warn("trace export", "err", err)
	}
}

func (a *admin) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	id := r.URL.Query().Get("id")
	ctx, cancel := context.WithTimeout(r.Context(), a.drainTimeout)
	defer cancel()
	if err := a.router.Drain(ctx, id); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"drained": id})
}

func (a *admin) handleReplace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	oldID := r.URL.Query().Get("id")
	rt, err := a.fresh()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	newID := fmt.Sprintf("r%d", a.nextID.Add(1)-1)
	ctx, cancel := context.WithTimeout(r.Context(), a.drainTimeout)
	defer cancel()
	if _, err := a.router.Replace(ctx, oldID, newID, rt); err != nil {
		rt.Close()
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"drained": oldID, "added": newID})
}

// handler assembles the serving mux: the standard OpenAI-compatible
// frontend plus the cluster admin endpoints.
func (a *admin) handler(modelName string) http.Handler {
	fe := server.NewBackend(clusterBackend{a.router}, modelName)
	fe.EnableRequestTracing(a.reqSpans, obs.SideRouter)
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/stats", a.handleStats)
	mux.HandleFunc("/cluster/drain", a.handleDrain)
	mux.HandleFunc("/cluster/replace", a.handleReplace)
	mux.HandleFunc("/cluster/timeline", a.handleTimeline)
	mux.HandleFunc("/cluster/trace", a.handleTrace)
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.Handle("/", fe)
	return mux
}

// writeMergedTrace gathers the router's spans plus every remote
// replica's /tracespans export and writes one merged Chrome trace.
func (a *admin) writeMergedTrace(path string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	exports := append([]obs.ReqExport{a.reqSpans.Export()}, a.router.TraceExports(ctx)...)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeRequests(f, exports...); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(o clusterOptions) error {
	level, err := parseLevel(o.logLevel)
	if err != nil {
		return err
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	if o.selfcheck {
		return selfCheck(o, logger)
	}
	if o.selfcheckRemote {
		return selfCheckRemote(o, logger)
	}
	if o.selfcheckTrace {
		return selfCheckTrace(o, logger)
	}

	a, err := buildCluster(o, logger)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: fmt.Sprintf(":%d", o.port), Handler: a.handler(o.modelPath)}

	// First signal: graceful — drain every replica (in-flight streams keep
	// delivering) up to -drain-timeout. Second signal: abort immediately.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		logger.Info("draining cluster", "timeout", o.drainTimeout)
		go func() {
			<-sigCh
			logger.Warn("aborting")
			_ = a.router.Close()
		}()
		ctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
		defer cancel()
		if err := a.router.Shutdown(ctx); err != nil {
			logger.Warn("drain incomplete", "err", err)
		}
		_ = httpSrv.Shutdown(ctx)
	}()

	logger.Info("serving cluster",
		"replicas", o.replicas, "policy", o.policy, "model", o.modelPath,
		"pp", o.pp, "addr", httpSrv.Addr)
	serveErr := httpSrv.ListenAndServe()
	a.timeline.Stop()
	if o.traceOut != "" {
		if err := a.writeMergedTrace(o.traceOut); err != nil {
			logger.Warn("trace-out", "path", o.traceOut, "err", err)
		} else {
			logger.Info("wrote merged request trace", "path", o.traceOut)
		}
	}
	if serveErr != nil && serveErr != http.ErrServerClosed {
		return serveErr
	}
	return nil
}

// selfCheck is the end-to-end smoke behind `make cluster-smoke`: full HTTP
// path, concurrent prefix-group conversations, a drain mid-flight, then
// hard verification that nothing was dropped or leaked.
func selfCheck(o clusterOptions, logger *slog.Logger) error {
	o.replicas = 3
	o.policy = "prefix"
	o.timeScale = 0
	o.prefixCache = true
	a, err := buildCluster(o, logger)
	if err != nil {
		return err
	}
	defer a.close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: a.handler(o.modelPath)}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	// Multi-turn prefix-group conversations, compressed to ~1 s of replay.
	trace := workload.Conversations(stats.NewRNG(o.seed), workload.ConversationSpec{
		Dataset:     workload.ShareGPT,
		Rate:        40,
		Window:      time.Second,
		MaxTurns:    3,
		ThinkMean:   100 * time.Millisecond,
		FollowUpLen: 24,
		MaxContext:  2048,
	})
	if len(trace) == 0 {
		return fmt.Errorf("selfcheck: empty trace")
	}

	// Drain r1 through the admin endpoint once the replay is underway.
	drainErr := make(chan error, 1)
	go func() {
		time.Sleep(300 * time.Millisecond)
		req, _ := http.NewRequest(http.MethodPost, base+"/cluster/drain?id=r1", nil)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("drain status %s", resp.Status)
			}
		}
		drainErr <- err
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := client.Run(ctx, client.Options{
		BaseURL:     base,
		Model:       o.modelPath,
		Items:       trace,
		PromptMode:  client.PromptSynthetic,
		MaxInFlight: 64,
	})
	if err != nil {
		return err
	}
	if err := <-drainErr; err != nil {
		return fmt.Errorf("selfcheck: drain: %w", err)
	}
	for _, e := range res.Errors {
		return fmt.Errorf("selfcheck: stream error (of %d): %w", len(res.Errors), e)
	}
	if res.Rejected > 0 {
		return fmt.Errorf("selfcheck: %d rejections at trivial load", res.Rejected)
	}

	// Every stream delivered exactly the tokens it asked for.
	recs := res.Collector.Records()
	if len(recs) != len(trace) {
		return fmt.Errorf("selfcheck: %d streams completed, want %d", len(recs), len(trace))
	}
	for _, rec := range recs {
		if want := trace[rec.ID].OutputLen; rec.OutputTokens != want {
			return fmt.Errorf("selfcheck: request %d delivered %d of %d tokens", rec.ID, rec.OutputTokens, want)
		}
	}

	// The drained replica must be retired, the survivors healthy; after a
	// full drain nothing may stay resident and no replica may leak KV.
	if len(a.router.Retired()) != 1 || a.router.Retired()[0].ID != "r1" {
		return fmt.Errorf("selfcheck: retired = %v", replicaRows(a.router.Retired()))
	}
	if len(a.router.Replicas()) != 2 {
		return fmt.Errorf("selfcheck: active = %v", replicaRows(a.router.Replicas()))
	}
	sdCtx, sdCancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer sdCancel()
	if err := a.router.Shutdown(sdCtx); err != nil {
		return fmt.Errorf("selfcheck: shutdown: %w", err)
	}
	var finished int
	for _, rep := range a.router.Retired() {
		st := rep.Stats()
		finished += st.Finished
		if st.Resident != 0 || st.InFlight != 0 {
			return fmt.Errorf("selfcheck: replica %s: %d resident / %d in flight after drain",
				rep.ID, st.Resident, st.InFlight)
		}
		if st.KVFreeBlocks != st.KVTotalBlocks {
			return fmt.Errorf("selfcheck: replica %s leaked KV: %d of %d blocks free",
				rep.ID, st.KVFreeBlocks, st.KVTotalBlocks)
		}
	}
	if finished != len(trace) {
		return fmt.Errorf("selfcheck: replicas finished %d, want %d", finished, len(trace))
	}
	logger.Info("selfcheck ok",
		"streams", len(recs), "replicas", 3, "drained", "r1",
		"retries_429", a.router.Retries429())
	fmt.Printf("selfcheck ok: %d streams, 3 replicas, drained r1 mid-flight, zero dropped tokens\n", len(recs))
	return nil
}
