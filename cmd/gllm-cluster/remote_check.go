package main

// selfCheckRemote is the end-to-end smoke behind `make remote-smoke`: two
// real gllm-server processes on loopback ports plus one in-process replica
// behind a single router, exercising the remote transport's full fault
// matrix against live processes:
//
//  1. conversation traffic spread across all three replicas, one remote
//     drained mid-flight — the cluster audit must prove zero dropped
//     tokens and no KV leaks across the HTTP boundary;
//  2. the other remote killed (SIGKILL) mid-stream — the in-flight handle
//     must terminate promptly with finish reason "disconnected" (never
//     hang), the replica must flip to unreachable, and survivors must keep
//     serving exactly-once streams;
//  3. a fresh process on the same port — the prober must flip the replica
//     back to routable with no manual reset, and a stream must complete
//     on it again.

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"time"

	"gllm/internal/cluster"
	"gllm/internal/runtime"
	"gllm/internal/stats"
	"gllm/internal/workload"
)

// freePort grabs an ephemeral loopback port and releases it for a child
// process to bind.
func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port, nil
}

// spawnServer starts one gllm-server child with a slowed cost model
// (time-scale 0.1) so streams live long enough to drain and kill
// mid-flight.
func spawnServer(bin string, port int, o clusterOptions) (*exec.Cmd, error) {
	cmd := exec.Command(bin,
		"-port", strconv.Itoa(port),
		"-model-path", o.modelPath,
		"-pp", strconv.Itoa(o.pp),
		"-sched", o.schedName,
		"-time-scale", "0.1",
		"-enable-prefix-cache",
		"-log-level", "warn",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return cmd, nil
}

// waitHealthy polls /healthz until the server answers 200.
func waitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("server at %s not healthy within %v", base, timeout)
}

// drainStream drains a handle to completion within timeout, returning the
// real (non-empty Text) token count and terminal reason; an error means
// the handle hung.
func drainStream(h *runtime.Handle, timeout time.Duration) (int, runtime.FinishReason, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	tokens := 0
	for {
		evs := h.Next(ctx)
		if evs == nil {
			break
		}
		for _, ev := range evs {
			if ev.Text != "" {
				tokens++
			}
		}
	}
	if ctx.Err() != nil {
		return tokens, "", fmt.Errorf("stream %d hung (drained %d tokens before %v timeout)", h.ID, tokens, timeout)
	}
	return tokens, h.FinishReason(), nil
}

// waitPressure polls a replica's health until cond holds.
func waitPressure(rep *cluster.Replica, timeout time.Duration, cond func(runtime.Pressure) bool) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond(rep.Pressure()) {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("replica %s stuck at health %q after %v", rep.ID, rep.Pressure().Health, timeout)
}

func selfCheckRemote(o clusterOptions, logger *slog.Logger) error {
	if o.serverBin == "" {
		return fmt.Errorf("selfcheck-remote: -server-bin required (path to a gllm-server binary)")
	}
	o.timeScale = 0 // the in-process replica runs at full speed

	// Boot the two remote processes.
	portA, err := freePort()
	if err != nil {
		return err
	}
	portB, err := freePort()
	if err != nil {
		return err
	}
	procA, err := spawnServer(o.serverBin, portA, o)
	if err != nil {
		return err
	}
	defer func() { _ = procA.Process.Kill(); _ = procA.Wait() }()
	procB, err := spawnServer(o.serverBin, portB, o)
	if err != nil {
		return err
	}
	defer func() { _ = procB.Process.Kill(); _ = procB.Wait() }()
	baseA := fmt.Sprintf("http://127.0.0.1:%d", portA)
	baseB := fmt.Sprintf("http://127.0.0.1:%d", portB)
	if err := waitHealthy(baseA, 15*time.Second); err != nil {
		return err
	}
	if err := waitHealthy(baseB, 15*time.Second); err != nil {
		return err
	}

	// One router: remoteA + remoteB over HTTP, plus one in-process replica.
	// Round-robin spreads streams across all three deterministically.
	pol, err := cluster.ByName("round-robin", o.seed)
	if err != nil {
		return err
	}
	router := cluster.New(cluster.Config{Policy: pol, Retry: o.retry, Seed: o.seed, Logger: logger})
	defer router.Close()
	cfg := o.remoteConfig(baseA, logger)
	cfg.ProbeInterval = 50 * time.Millisecond
	remA, err := cluster.NewRemote(cfg)
	if err != nil {
		return err
	}
	cfg.BaseURL = baseB
	remB, err := cluster.NewRemote(cfg)
	if err != nil {
		return err
	}
	if _, err := router.Add("remoteA", remA); err != nil {
		return err
	}
	repB, err := router.Add("remoteB", remB)
	if err != nil {
		return err
	}
	fresh, err := replicaFactory(o, nil)
	if err != nil {
		return err
	}
	localRT, err := fresh()
	if err != nil {
		return err
	}
	if _, err := router.Add("local", localRT); err != nil {
		return err
	}

	// Phase 1: conversation traffic across all replicas; drain remoteA
	// mid-flight. The transport drain must let its in-flight streams finish
	// (zero dropped tokens), proven by the cluster audit.
	trace := workload.Conversations(stats.NewRNG(o.seed), workload.ConversationSpec{
		Dataset:     workload.ShareGPT,
		Rate:        16,
		Window:      time.Second,
		MaxTurns:    3,
		ThinkMean:   50 * time.Millisecond,
		FollowUpLen: 24,
		MaxContext:  1024,
	})
	if len(trace) == 0 {
		return fmt.Errorf("selfcheck-remote: empty trace")
	}
	var (
		audit     cluster.Audit
		wg        sync.WaitGroup
		mu        sync.Mutex
		streamErr error
	)
	fail := func(err error) {
		mu.Lock()
		if streamErr == nil {
			streamErr = err
		}
		mu.Unlock()
	}
	sem := make(chan struct{}, 16)
	drained := make(chan error, 1)
	go func() {
		time.Sleep(400 * time.Millisecond) // mid-flight
		ctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
		defer cancel()
		drained <- router.Drain(ctx, "remoteA")
	}()
	for _, it := range trace {
		wg.Add(1)
		sem <- struct{}{}
		go func(it workload.Item) {
			defer wg.Done()
			defer func() { <-sem }()
			req := cluster.Request{
				PromptLen: it.PromptLen, MaxTokens: it.OutputLen,
				PrefixGroup: it.PrefixGroup, SharedPrefixLen: it.SharedPrefixLen,
			}
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			h, _, err := router.Submit(ctx, req)
			if err != nil {
				audit.RejectedSubmit()
				fail(fmt.Errorf("submit: %w", err))
				return
			}
			tokens, reason, err := drainStream(h, time.Minute)
			if err != nil {
				fail(err)
				return
			}
			audit.StreamDone(h.ID, tokens, req.MaxTokens, reason)
		}(it)
	}
	wg.Wait()
	if err := <-drained; err != nil {
		return fmt.Errorf("selfcheck-remote: drain remoteA: %w", err)
	}
	if streamErr != nil {
		return fmt.Errorf("selfcheck-remote: phase 1: %w", streamErr)
	}
	reps := append(router.Replicas(), router.Retired()...)
	if err := audit.Verify(int64(len(trace)), reps); err != nil {
		return fmt.Errorf("selfcheck-remote: audit after drain: %w", err)
	}
	logger.Info("phase 1 ok: drained remoteA mid-flight, audit clean",
		"streams", len(trace), "delivered", audit.DeliveredTokens())

	// Phase 2: kill remoteB mid-stream. The handle must terminate promptly
	// with "disconnected", remoteB must read unreachable, and the survivor
	// must keep serving exactly-once streams.
	long := cluster.Request{PromptLen: 64, MaxTokens: 4000}
	var h *runtime.Handle
	for tries := 0; ; tries++ {
		if tries >= 10 {
			return fmt.Errorf("selfcheck-remote: stream never landed on remoteB")
		}
		var rep *cluster.Replica
		h, rep, err = router.Submit(context.Background(), long)
		if err != nil {
			return fmt.Errorf("selfcheck-remote: phase 2 submit: %w", err)
		}
		if rep.ID == "remoteB" {
			break
		}
		h.Cancel()
		if _, _, err := drainStream(h, 30*time.Second); err != nil {
			return err
		}
	}
	firstCtx, firstCancel := context.WithTimeout(context.Background(), 30*time.Second)
	first := h.Next(firstCtx)
	firstCancel()
	if first == nil {
		return fmt.Errorf("selfcheck-remote: no tokens from remoteB before kill")
	}
	if err := procB.Process.Kill(); err != nil {
		return err
	}
	_ = procB.Wait()
	killedAt := time.Now()
	tokens, reason, err := drainStream(h, 15*time.Second)
	if err != nil {
		return fmt.Errorf("selfcheck-remote: %w", err)
	}
	if reason != runtime.FinishDisconnected {
		return fmt.Errorf("selfcheck-remote: killed stream finished %q after %d tokens, want disconnected", reason, tokens)
	}
	if err := waitPressure(repB, 10*time.Second, func(p runtime.Pressure) bool {
		return p.Health == cluster.HealthUnreachable
	}); err != nil {
		return fmt.Errorf("selfcheck-remote: %w", err)
	}
	for i := 0; i < 4; i++ {
		want := 12 + i
		h, rep, err := router.Submit(context.Background(), cluster.Request{PromptLen: 32, MaxTokens: want})
		if err != nil {
			return fmt.Errorf("selfcheck-remote: survivor submit: %w", err)
		}
		if rep.ID != "local" {
			return fmt.Errorf("selfcheck-remote: stream routed to %q with remoteB down", rep.ID)
		}
		tokens, reason, err := drainStream(h, 30*time.Second)
		if err != nil {
			return err
		}
		if tokens != want || reason != runtime.FinishLength {
			return fmt.Errorf("selfcheck-remote: survivor stream delivered %d/%d (%q)", tokens, want, reason)
		}
	}
	logger.Info("phase 2 ok: killed remoteB mid-stream",
		"disconnect_latency", time.Since(killedAt), "abort_reason", reason)

	// Phase 3: a fresh process on the same port must bring remoteB back
	// without any transport reset.
	procB2, err := spawnServer(o.serverBin, portB, o)
	if err != nil {
		return err
	}
	defer func() { _ = procB2.Process.Kill(); _ = procB2.Wait() }()
	if err := waitHealthy(baseB, 15*time.Second); err != nil {
		return err
	}
	if err := waitPressure(repB, 10*time.Second, func(p runtime.Pressure) bool {
		return p.Health == runtime.HealthOK
	}); err != nil {
		return fmt.Errorf("selfcheck-remote: no recovery: %w", err)
	}
	for tries := 0; ; tries++ {
		if tries >= 10 {
			return fmt.Errorf("selfcheck-remote: no stream landed on revived remoteB")
		}
		h, rep, err := router.Submit(context.Background(), cluster.Request{PromptLen: 16, MaxTokens: 8})
		if err != nil {
			return fmt.Errorf("selfcheck-remote: phase 3 submit: %w", err)
		}
		tokens, reason, err := drainStream(h, 30*time.Second)
		if err != nil {
			return err
		}
		if tokens != 8 || reason != runtime.FinishLength {
			return fmt.Errorf("selfcheck-remote: post-recovery stream delivered %d/8 (%q)", tokens, reason)
		}
		if rep.ID == "remoteB" {
			break
		}
	}

	sdCtx, sdCancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer sdCancel()
	if err := router.Shutdown(sdCtx); err != nil {
		return fmt.Errorf("selfcheck-remote: shutdown: %w", err)
	}
	logger.Info("selfcheck-remote ok")
	fmt.Printf("selfcheck-remote ok: %d audited streams, drained remoteA mid-flight, "+
		"killed and revived remoteB, zero dropped tokens\n", len(trace))
	return nil
}
