package main

// selfCheckTrace is the end-to-end smoke behind `make cluster-trace-smoke`:
// two real gllm-server processes behind a remote-only router (so every
// request crosses the HTTP boundary), conversation traffic through the
// frontend's full SSE path, then hard verification of the observability
// surfaces this build adds:
//
//  1. the federated /metrics page parses as Prometheus text 0.0.4 and
//     carries per-replica-labeled series plus nonzero gllm_router_* series;
//  2. the merged Chrome trace written to -trace-out decodes, passes the
//     request-trace validator (one router root per trace, no overlapping
//     series, replica spans inside the root up to clock skew), and at
//     least one trace carries spans from BOTH sides of the HTTP hop.

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"gllm/internal/client"
	"gllm/internal/metrics"
	"gllm/internal/obs"
	"gllm/internal/stats"
	"gllm/internal/workload"
)

// traceSkew is the cross-process clock tolerance for validating merged
// traces: same-host wall clocks anchor each process's span origin, so
// replica spans may escape the router root by scheduling jitter only.
const traceSkew = 50 * time.Millisecond

// findFamily returns the parsed family with the given name, or nil.
func findFamily(fams []metrics.Family, name string) *metrics.Family {
	for i := range fams {
		if fams[i].Name == name {
			return &fams[i]
		}
	}
	return nil
}

// hasLabel reports whether the sample carries the label pair.
func hasLabel(s metrics.Sample, name, value string) bool {
	for _, l := range s.Labels {
		if l.Name == name && l.Value == value {
			return true
		}
	}
	return false
}

func selfCheckTrace(o clusterOptions, logger *slog.Logger) error {
	if o.serverBin == "" {
		return fmt.Errorf("selfcheck-trace: -server-bin required (path to a gllm-server binary)")
	}
	if o.traceOut == "" {
		o.traceOut = filepath.Join(os.TempDir(), fmt.Sprintf("gllm-cluster-trace-%d.json", os.Getpid()))
	}

	// Two remote processes, zero in-process replicas: every routed request
	// must cross the HTTP hop, so the merged trace always spans processes.
	portA, err := freePort()
	if err != nil {
		return err
	}
	portB, err := freePort()
	if err != nil {
		return err
	}
	procA, err := spawnServer(o.serverBin, portA, o)
	if err != nil {
		return err
	}
	defer func() { _ = procA.Process.Kill(); _ = procA.Wait() }()
	procB, err := spawnServer(o.serverBin, portB, o)
	if err != nil {
		return err
	}
	defer func() { _ = procB.Process.Kill(); _ = procB.Wait() }()
	baseA := fmt.Sprintf("http://127.0.0.1:%d", portA)
	baseB := fmt.Sprintf("http://127.0.0.1:%d", portB)
	if err := waitHealthy(baseA, 15*time.Second); err != nil {
		return err
	}
	if err := waitHealthy(baseB, 15*time.Second); err != nil {
		return err
	}

	o.replicas = 0
	o.remotes = []string{baseA, baseB}
	o.policy = "round-robin"
	a, err := buildCluster(o, logger)
	if err != nil {
		return err
	}
	defer a.close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: a.handler(o.modelPath)}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	// A short burst of multi-turn conversations through the frontend; the
	// frontend mints a trace ID per request and both hops record spans.
	trace := workload.Conversations(stats.NewRNG(o.seed), workload.ConversationSpec{
		Dataset:     workload.ShareGPT,
		Rate:        8,
		Window:      500 * time.Millisecond,
		MaxTurns:    2,
		ThinkMean:   50 * time.Millisecond,
		FollowUpLen: 16,
		MaxContext:  512,
	})
	if len(trace) == 0 {
		return fmt.Errorf("selfcheck-trace: empty trace")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := client.Run(ctx, client.Options{
		BaseURL:     base,
		Model:       o.modelPath,
		Items:       trace,
		PromptMode:  client.PromptSynthetic,
		MaxInFlight: 8,
	})
	if err != nil {
		return err
	}
	for _, e := range res.Errors {
		return fmt.Errorf("selfcheck-trace: stream error (of %d): %w", len(res.Errors), e)
	}

	// 1. Federated /metrics: must parse as Prometheus 0.0.4 and carry
	// per-replica-labeled series plus nonzero router series.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("selfcheck-trace: scrape frontend: %w", err)
	}
	fams, err := metrics.ParseExposition(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("selfcheck-trace: federated exposition does not parse: %w", err)
	}
	picks := findFamily(fams, "gllm_router_picks_total")
	if picks == nil {
		return fmt.Errorf("selfcheck-trace: no gllm_router_picks_total family")
	}
	var picked float64
	for _, s := range picks.Samples {
		picked += s.Value
	}
	if picked < float64(len(trace)) {
		return fmt.Errorf("selfcheck-trace: gllm_router_picks_total sums to %v, want >= %d", picked, len(trace))
	}
	up := findFamily(fams, "gllm_replica_up")
	if up == nil {
		return fmt.Errorf("selfcheck-trace: no gllm_replica_up family")
	}
	for _, id := range []string{"remote0", "remote1"} {
		found := false
		for _, s := range up.Samples {
			if hasLabel(s, "replica", id) && s.Value == 1 {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("selfcheck-trace: gllm_replica_up{replica=%q} != 1", id)
		}
		// The remote's own series must federate under its replica label —
		// gllm_requests_finished_total is served by every gllm-server.
		reqs := findFamily(fams, "gllm_requests_finished_total")
		if reqs == nil {
			return fmt.Errorf("selfcheck-trace: no federated gllm_requests_finished_total family")
		}
		found = false
		for _, s := range reqs.Samples {
			if hasLabel(s, "replica", id) {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("selfcheck-trace: gllm_requests_total missing {replica=%q} series", id)
		}
	}

	// /cluster/timeline must have sampled both remotes at least once.
	tl, err := http.Get(base + "/cluster/timeline")
	if err != nil {
		return fmt.Errorf("selfcheck-trace: timeline: %w", err)
	}
	tl.Body.Close()
	if tl.StatusCode != http.StatusOK {
		return fmt.Errorf("selfcheck-trace: timeline status %s", tl.Status)
	}
	if a.timeline.Total() == 0 {
		return fmt.Errorf("selfcheck-trace: timeline recorded no samples")
	}

	// 2. Merged trace: gather the router's spans plus both remotes'
	// /tracespans exports (the children are still alive here), then decode
	// and validate the written file the way gllm-tracecheck does.
	if err := a.writeMergedTrace(o.traceOut); err != nil {
		return fmt.Errorf("selfcheck-trace: write merged trace: %w", err)
	}
	f, err := os.Open(o.traceOut)
	if err != nil {
		return err
	}
	decoded, err := obs.ReadChromeRequests(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("selfcheck-trace: merged trace does not decode: %w", err)
	}
	if err := decoded.Validate(traceSkew); err != nil {
		return fmt.Errorf("selfcheck-trace: merged trace invalid: %w", err)
	}
	crossProcess := 0
	for _, spans := range decoded.ByID {
		router, replica := false, false
		for _, s := range spans {
			switch s.Side {
			case obs.SideRouter:
				router = true
			case obs.SideReplica:
				replica = true
			}
		}
		if router && replica {
			crossProcess++
		}
	}
	if crossProcess == 0 {
		return fmt.Errorf("selfcheck-trace: no trace carries both router- and replica-side spans (%d traces)",
			len(decoded.ByID))
	}

	sdCtx, sdCancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer sdCancel()
	if err := a.router.Shutdown(sdCtx); err != nil {
		return fmt.Errorf("selfcheck-trace: shutdown: %w", err)
	}
	logger.Info("selfcheck-trace ok",
		"streams", len(trace), "traces", len(decoded.ByID),
		"cross_process", crossProcess, "trace_out", o.traceOut)
	fmt.Printf("selfcheck-trace ok: %d streams over 2 remote replicas, %d merged traces "+
		"(%d spanning the HTTP hop), federated /metrics verified, trace at %s\n",
		len(trace), len(decoded.ByID), crossProcess, o.traceOut)
	return nil
}
