package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"gllm/internal/core"
	"gllm/internal/obs"
	"gllm/internal/stats"
	"gllm/internal/workload"
)

func params() core.Params { return core.DefaultParams() }

func TestRunSmoke(t *testing.T) {
	dir := t.TempDir()
	chrome := filepath.Join(dir, "trace.json")
	iters := filepath.Join(dir, "iters.csv")
	util := filepath.Join(dir, "util.csv")
	err := run("Qwen2.5-14B", "L20-48GB", 1, 4, "pp", 1, "gllm", "", "sharegpt", "",
		2, 10*time.Second, 7, 0.9, 2048, params(),
		chrome, iters, util, 2*time.Second, 100*time.Millisecond, simOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{chrome, iters, util} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("%s missing: %v", f, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s empty", f)
		}
	}
}

func TestRunTraceOut(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "spans.json")
	err := run("Qwen2.5-14B", "L20-48GB", 1, 4, "pp", 1, "gllm", "", "sharegpt", "",
		2, 5*time.Second, 7, 0.9, 2048, params(),
		"", "", "", 0, 0, simOptions{traceOut: out})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	dec, err := obs.ReadChrome(f)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Stages != 4 {
		t.Fatalf("decoded stages = %d", dec.Stages)
	}
	if len(dec.Spans) == 0 {
		t.Fatal("no spans in trace-out file")
	}
}

func TestRunTensorParallel(t *testing.T) {
	err := run("Qwen2.5-14B", "L20-48GB", 1, 4, "tp", 1, "sarathi", "sglang", "sharegpt", "",
		1, 5*time.Second, 7, 0.9, 2048, params(), "", "", "", 0, 0, simOptions{})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunTokenParallel(t *testing.T) {
	// "tokenpar" aliases "tknp"; a span trace gets one lane per rank.
	dir := t.TempDir()
	out := filepath.Join(dir, "spans.json")
	err := run("Qwen2.5-14B", "L20-48GB", 1, 4, "tokenpar", 2, "sarathi", "gllm", "sharegpt", "",
		1, 5*time.Second, 7, 0.9, 2048, params(), "", "", "", 0, 0, simOptions{traceOut: out})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	dec, err := obs.ReadChrome(f)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Stages != 4 {
		t.Fatalf("decoded stages = %d, want one lane per rank", dec.Stages)
	}
	// Root TP wider than the deployment must be rejected.
	if err := run("Qwen2.5-14B", "L20-48GB", 1, 4, "tknp", 5, "sarathi", "gllm", "sharegpt", "",
		1, time.Second, 7, 0.9, 2048, params(), "", "", "", 0, 0, simOptions{}); err == nil {
		t.Fatal("root TP 5 on 4 GPUs accepted")
	}
}

func TestRunFeatureToggles(t *testing.T) {
	err := run("Qwen2.5-14B", "L20-48GB", 1, 4, "pp", 1, "gllm", "", "sharegpt", "",
		1, 8*time.Second, 7, 0.9, 2048, params(), "", "", "", 0, 0,
		simOptions{enableCPP: true, prefixCache: true, costAware: true, convs: true})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceReplay(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	items := workload.Poisson(stats.NewRNG(3), workload.ShareGPT, 2, 5*time.Second)
	if err := workload.WriteJSON(f, items); err != nil {
		t.Fatal(err)
	}
	f.Close()
	err = run("Qwen2.5-14B", "L20-48GB", 1, 4, "pp", 1, "gllm", "", "", tracePath,
		0, 0, 0, 0.9, 2048, params(), "", "", "", 0, 0, simOptions{})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		fn   func() error
	}{
		{"bad model", func() error {
			return run("GPT-9", "L20-48GB", 1, 4, "pp", 1, "gllm", "", "sharegpt", "",
				1, time.Second, 7, 0.9, 2048, params(), "", "", "", 0, 0, simOptions{})
		}},
		{"bad gpu", func() error {
			return run("Qwen2.5-14B", "H900", 1, 4, "pp", 1, "gllm", "", "sharegpt", "",
				1, time.Second, 7, 0.9, 2048, params(), "", "", "", 0, 0, simOptions{})
		}},
		{"bad sched", func() error {
			return run("Qwen2.5-14B", "L20-48GB", 1, 4, "pp", 1, "fcfs", "", "sharegpt", "",
				1, time.Second, 7, 0.9, 2048, params(), "", "", "", 0, 0, simOptions{})
		}},
		{"bad runtime", func() error {
			return run("Qwen2.5-14B", "L20-48GB", 1, 4, "pp", 1, "gllm", "rust", "sharegpt", "",
				1, time.Second, 7, 0.9, 2048, params(), "", "", "", 0, 0, simOptions{})
		}},
		{"bad dataset", func() error {
			return run("Qwen2.5-14B", "L20-48GB", 1, 4, "pp", 1, "gllm", "", "pile", "",
				1, time.Second, 7, 0.9, 2048, params(), "", "", "", 0, 0, simOptions{})
		}},
		{"bad parallelism", func() error {
			return run("Qwen2.5-14B", "L20-48GB", 1, 4, "dp", 1, "gllm", "", "sharegpt", "",
				1, time.Second, 7, 0.9, 2048, params(), "", "", "", 0, 0, simOptions{})
		}},
		{"cost-aware on sarathi", func() error {
			return run("Qwen2.5-14B", "L20-48GB", 1, 4, "pp", 1, "sarathi", "", "sharegpt", "",
				1, time.Second, 7, 0.9, 2048, params(), "", "", "", 0, 0, simOptions{costAware: true})
		}},
		{"missing trace file", func() error {
			return run("Qwen2.5-14B", "L20-48GB", 1, 4, "pp", 1, "gllm", "", "", "/nonexistent.json",
				1, time.Second, 7, 0.9, 2048, params(), "", "", "", 0, 0, simOptions{})
		}},
	}
	for _, tc := range cases {
		if err := tc.fn(); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}
