// Command gllm-sim runs one virtual-time serving simulation and prints the
// paper's metrics (TTFT, TPOT, E2EL, throughput, preemptions, bubbles).
//
// Examples:
//
//	gllm-sim -model Qwen2.5-32B -sched gllm -rate 4
//	gllm-sim -model Qwen2.5-14B -sched sarathi -runtime vllm -rate 8 -dataset azure
//	gllm-sim -model Llama3.1-100B -gpu A800-80GB -nodes 4 -gpus-per-node 1 -rate 0.5
//	gllm-sim -parallelism tp -sched sarathi -runtime sglang -rate 2
//	gllm-sim -sched gllm -rate 4 -chrome-trace trace.json -iters-csv iters.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gllm/internal/core"
	"gllm/internal/engine"
	"gllm/internal/gpu"
	"gllm/internal/invariant"
	"gllm/internal/model"
	"gllm/internal/network"
	"gllm/internal/obs"
	"gllm/internal/sched"
	"gllm/internal/stats"
	"gllm/internal/workload"
)

func main() {
	var (
		modelName   = flag.String("model", "Qwen2.5-32B", "model: Qwen2.5-14B, Qwen2.5-32B, Llama3.1-100B, Mixtral-8x7B")
		gpuName     = flag.String("gpu", "L20-48GB", "GPU: L20-48GB, A100-40GB, A800-80GB")
		nodes       = flag.Int("nodes", 1, "number of nodes (cross-node uses the 73.28 Gbps simulated net)")
		gpusPerNode = flag.Int("gpus-per-node", 4, "GPUs per node (PCIe inside a node)")
		parallelism = flag.String("parallelism", "pp", "pp (pipeline), tp (tensor) or tknp (token parallel; tokenpar is an alias)")
		rootTP      = flag.Int("root-tp", 1, "token-parallel root group width: the first N ranks hold the weights (tknp only)")
		schedName   = flag.String("sched", "gllm", "scheduler: gllm, sarathi, vllm-ve, td-pipe, orca, batch-level, gllm-no-wt, gllm-no-ut, gllm-ck")
		runtimeName = flag.String("runtime", "", "runtime model: gllm, vllm, sglang (default: matches scheduler)")
		datasetName = flag.String("dataset", "sharegpt", "workload: sharegpt or azure")
		tracePath   = flag.String("trace-file", "", "replay a JSON trace instead of synthesizing (see workload.LoadJSON)")
		rate        = flag.Float64("rate", 4, "request rate (req/s)")
		window      = flag.Duration("window", 128*time.Second, "request send window")
		seed        = flag.Uint64("seed", 20250704, "workload seed")
		memUtil     = flag.Float64("gpu-memory-util", 0.9, "GPU memory utilization fraction")
		budget      = flag.Int("token-budget", 2048, "Sarathi token budget")
		iterT       = flag.Int("iterp", 8, "gLLM #T")
		maxP        = flag.Int("maxp", 2048, "gLLM #MaxP")
		minP        = flag.Int("minp", 32, "gLLM #MinP")
		kvThresh    = flag.Float64("kvthresh", 0.05, "gLLM KV_thresh")
		chromeTrace = flag.String("chrome-trace", "", "write a Chrome trace JSON of the pipeline timeline")
		itersCSV    = flag.String("iters-csv", "", "write per-iteration token counts as CSV")
		utilCSV     = flag.String("util-csv", "", "write per-stage utilization samples as CSV")
		sloTTFT     = flag.Duration("slo-ttft", 0, "report SLO attainment with this TTFT limit")
		sloTPOT     = flag.Duration("slo-tpot", 0, "TPOT limit for -slo-ttft")
		enableCPP   = flag.Bool("enable-cpp", false, "pipeline a request's prompt chunks across micro-batches")
		prefixCache = flag.Bool("enable-prefix-cache", false, "reuse KV across requests sharing a prefix group")
		costAware   = flag.Bool("cost-aware", false, "attention-aware decode balancing (gLLM scheduler only)")
		convs       = flag.Bool("conversations", false, "synthesize multi-turn conversations instead of independent requests")
		checkInv    = flag.Bool("check-invariants", false, "audit every scheduling cycle against the invariant catalogue (see internal/invariant)")
		traceOut    = flag.String("trace-out", "", "write the obs span recorder as Chrome trace-event JSON (per-stage exec/xfer/prep lanes) and print per-stage bubble accounting")
	)
	flag.Parse()
	opts := simOptions{
		enableCPP:   *enableCPP,
		prefixCache: *prefixCache,
		costAware:   *costAware,
		convs:       *convs,
		checkInv:    *checkInv,
		traceOut:    *traceOut,
	}
	if err := run(*modelName, *gpuName, *nodes, *gpusPerNode, *parallelism, *rootTP, *schedName,
		*runtimeName, *datasetName, *tracePath, *rate, *window, *seed, *memUtil, *budget,
		core.Params{IterT: *iterT, MaxP: *maxP, MinP: *minP, KVThresh: *kvThresh},
		*chromeTrace, *itersCSV, *utilCSV, *sloTTFT, *sloTPOT, opts); err != nil {
		fmt.Fprintln(os.Stderr, "gllm-sim:", err)
		os.Exit(1)
	}
}

// simOptions carries the optional feature toggles.
type simOptions struct {
	enableCPP   bool
	prefixCache bool
	costAware   bool
	convs       bool
	checkInv    bool
	traceOut    string
}

func run(modelName, gpuName string, nodes, gpusPerNode int, parallelism string, rootTP int,
	schedName, runtimeName, datasetName, tracePath string, rate float64, window time.Duration,
	seed uint64, memUtil float64, budget int, params core.Params,
	chromeTrace, itersCSV, utilCSV string, sloTTFT, sloTPOT time.Duration,
	opts simOptions) error {

	if parallelism == "tokenpar" {
		parallelism = "tknp"
	}
	m, err := model.ByName(modelName)
	if err != nil {
		return err
	}
	g, err := gpu.ByName(gpuName)
	if err != nil {
		return err
	}
	var topo network.Topology
	if nodes > 1 {
		topo = network.CrossNode(nodes, gpusPerNode, network.PCIe, network.SimulatedNet)
	} else {
		topo = network.IntraNode(gpusPerNode, network.PCIe)
	}
	s, err := sched.ByName(schedName, budget, params)
	if err != nil {
		return err
	}
	if opts.costAware {
		if _, ok := s.(*sched.Throttle); !ok {
			return fmt.Errorf("-cost-aware requires a gLLM scheduler, got %q", schedName)
		}
		s = sched.NewCostAwareThrottle(params, m)
	}
	if runtimeName == "" {
		if schedName == "sarathi" {
			runtimeName = "vllm"
		} else {
			runtimeName = "gllm"
		}
	}
	var rt engine.RuntimeModel
	switch runtimeName {
	case "gllm":
		rt = engine.GLLMRuntime
	case "vllm":
		rt = engine.VLLMRuntime
	case "sglang":
		rt = engine.SGLangRuntime
	default:
		return fmt.Errorf("unknown runtime %q", runtimeName)
	}

	var items []workload.Item
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return err
		}
		items, err = workload.LoadJSON(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		ds, err := workload.ByName(datasetName)
		if err != nil {
			return err
		}
		if opts.convs {
			items = workload.Conversations(stats.NewRNG(seed), workload.DefaultConversationSpec(ds, rate, window))
		} else {
			items = workload.Poisson(stats.NewRNG(seed), ds, rate, window)
		}
	}
	fmt.Printf("workload: %d requests, %d total tokens\n", len(items), workload.TotalTokens(items))

	cfg := engine.Config{
		Model:             m,
		GPU:               g,
		Topo:              topo,
		MemUtil:           memUtil,
		Scheduler:         s,
		Runtime:           rt,
		EnableTrace:       chromeTrace != "",
		EnableCPP:         opts.enableCPP,
		EnablePrefixCache: opts.prefixCache,
	}
	if utilCSV != "" {
		cfg.UtilSampleEvery = 250 * time.Millisecond
	}
	var col *invariant.Collector
	if opts.checkInv {
		col = invariant.NewCollector(invariant.Options{})
		cfg.Observer = col.Observer
	}
	var rec *obs.Recorder
	if opts.traceOut != "" {
		stages := topo.GPUs()
		if parallelism == "tp" {
			stages = 1 // the TP engine is one fused device
		}
		// tknp keeps one lane per rank: roots and KV peers diverge.
		rec = obs.NewRecorder(stages, 0)
		cfg.Spans = rec
	}

	var res *engine.Result
	switch parallelism {
	case "pp":
		res, err = engine.RunPipeline(cfg, items)
	case "tp":
		res, err = engine.RunTensor(cfg, items)
	case "tknp":
		res, err = engine.RunTokenParallel(engine.TokenParallelConfig{Config: cfg, RootTP: rootTP}, items)
	default:
		return fmt.Errorf("unknown parallelism %q", parallelism)
	}
	if err != nil {
		return err
	}

	fmt.Printf("deployment: %s on %s (%s, %s parallelism, %s scheduler, %s runtime)\n",
		m.Name, topo.Name, g.Name, parallelism, res.SchedulerName, res.RuntimeName)
	fmt.Printf("KV capacity: %d tokens; injections: %d; preemptions: %d; bubble fraction: %.3f\n",
		res.KVCapacityTokens, res.Injections, res.Preemptions, res.BubbleFraction)
	if parallelism == "tknp" {
		fmt.Printf("token-parallel: root TP %d, scatter/gather volume %.2f GB\n",
			rootTP, float64(res.TknpCommBytes)/1e9)
	}
	fmt.Print(res.Report.String())
	if col != nil {
		// A violation aborts the run through the engine's error path, so
		// reaching this point means every audited cycle was clean.
		fmt.Printf("invariants: ok (%d audited cycles)\n", col.Cycles())
	}
	if sloTTFT > 0 {
		att := res.Collector.SLOAttainment(sloTTFT, sloTPOT)
		fmt.Printf("  SLO attainment (ttft<=%v, tpot<=%v): %.1f%%\n", sloTTFT, sloTPOT, att*100)
	}

	if rec != nil {
		f, err := os.Create(opts.traceOut)
		if err != nil {
			return err
		}
		if err := rec.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		acc := rec.AccountOver(res.Makespan)
		fmt.Printf("trace-out: %s (%d spans, %d dropped)\n", opts.traceOut, acc.Spans, acc.Dropped)
		fmt.Print(acc.String())
	}
	if chromeTrace != "" && res.Trace != nil {
		f, err := os.Create(chromeTrace)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.Trace.WriteChrome(f); err != nil {
			return err
		}
		fmt.Printf("chrome trace: %s (%d spans)\n", chromeTrace, res.Trace.Len())
	}
	if itersCSV != "" {
		f, err := os.Create(itersCSV)
		if err != nil {
			return err
		}
		fmt.Fprintln(f, "seconds,prefill,decode")
		for _, it := range res.Iterations {
			fmt.Fprintf(f, "%.6f,%d,%d\n", it.Time.Seconds(), it.Prefill, it.Decode)
		}
		f.Close()
		fmt.Printf("iteration CSV: %s (%d rows)\n", itersCSV, len(res.Iterations))
	}
	if utilCSV != "" && len(res.StageUtil) > 0 {
		f, err := os.Create(utilCSV)
		if err != nil {
			return err
		}
		fmt.Fprint(f, "seconds")
		for i := range res.StageUtil {
			fmt.Fprintf(f, ",stage%d", i)
		}
		fmt.Fprintln(f)
		for row := 0; row < len(res.StageUtil[0].Points); row++ {
			fmt.Fprintf(f, "%.3f", res.StageUtil[0].Points[row].T.Seconds())
			for _, ts := range res.StageUtil {
				v := 0.0
				if row < len(ts.Points) {
					v = ts.Points[row].V
				}
				fmt.Fprintf(f, ",%.4f", v)
			}
			fmt.Fprintln(f)
		}
		f.Close()
		fmt.Printf("utilization CSV: %s\n", utilCSV)
	}
	return nil
}
