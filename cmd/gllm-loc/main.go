// Command gllm-loc counts the Go lines of code of a source tree (Table 1's
// size comparison row).
//
//	gllm-loc [-tests] [root]
package main

import (
	"flag"
	"fmt"
	"os"

	"gllm/internal/experiments"
)

func main() {
	tests := flag.Bool("tests", false, "include _test.go files")
	flag.Parse()
	root := "."
	if flag.NArg() > 0 {
		root = flag.Arg(0)
	}
	n, err := experiments.CountGoLines(root, *tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gllm-loc:", err)
		os.Exit(1)
	}
	fmt.Printf("%d non-blank Go lines under %s (tests included: %v)\n", n, root, *tests)
}
